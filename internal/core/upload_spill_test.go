package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
	"scfs/internal/coord"
	"scfs/internal/depsky"
	"scfs/internal/depspace"
	"scfs/internal/fsapi"
	"scfs/internal/storage"
)

// nonBlockingPair mounts two agents (a writer in non-blocking mode and a
// blocking reader) over one shared simulated deployment, so what the
// writer's background uploader actually pushed to the clouds can be
// observed from the outside.
func nonBlockingPair(t *testing.T, chunkSize int, threshold, diskCacheBytes int64) (writer, reader *Agent) {
	t.Helper()
	providers := make([]*cloudsim.Provider, 4)
	clients := make([]cloud.ObjectStore, 4)
	for i := range clients {
		providers[i] = cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		clients[i] = providers[i].MustClient(providers[i].CreateAccount("alice"))
	}
	mgr, err := depsky.New(depsky.Options{Clouds: clients, F: 1, ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	space := depspace.NewSpace()
	newAgent := func(mode Mode, agentID string) *Agent {
		svc := coord.NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: space}, "alice", nil))
		a, err := New(bg, Options{
			User:                 "alice",
			AgentID:              agentID,
			Mode:                 mode,
			Coordination:         svc,
			Storage:              storage.NewCloudOfClouds(mgr),
			StreamThresholdBytes: threshold,
			DiskCacheDir:         t.TempDir(),
			DiskCacheBytes:       diskCacheBytes,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { a.Unmount(bg) })
		return a
	}
	return newAgent(NonBlocking, "writer-1"), newAgent(Blocking, "reader-1")
}

// TestUploaderStreamsFromDiskCache is the bounded-uploader-memory check: a
// queued background upload carries no payload — the dirty version is
// spilled to (and pinned in) the disk cache, and the uploader streams it
// from there. Dropping the in-memory copy before the upload runs must not
// lose the write.
func TestUploaderStreamsFromDiskCache(t *testing.T) {
	const chunk = 4096
	w, r := nonBlockingPair(t, chunk, 2*chunk, 1<<30)
	// Large enough that the uploader takes the streaming path out of the
	// disk cache file.
	data := randData(t, 8*chunk+33)
	if err := fsapi.WriteFile(bg, w, "/spill.bin", data); err != nil {
		t.Fatal(err)
	}
	// The task is queued; its payload must live in the disk cache, not the
	// queue. Clearing the memory cache proves the uploader doesn't depend
	// on an in-memory copy either.
	w.memCache.Clear()
	if err := w.WaitForUploads(bg); err != nil {
		t.Fatal(err)
	}
	if errs := w.Stats().UploadErrors; errs != 0 {
		t.Fatalf("background upload errors: %d", errs)
	}
	got, err := fsapi.ReadFile(bg, r, "/spill.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reader saw wrong bytes after spilled background upload")
	}
}

// TestUploaderQueueHoldsNoPayload pins the memory bound structurally: after
// Close queues an upload, the pending task's only payload copy is the disk
// cache entry (pinned against eviction), so queue memory is O(tasks), not
// O(bytes). The disk entry must stay pinned — and thus unevictable — until
// the upload completes, even under cache pressure.
func TestUploaderQueueHoldsNoPayload(t *testing.T) {
	const chunk = 4096
	// Disk cache sized to ~2 versions: the pressure writes below would
	// evict an unpinned queued version.
	w, r := nonBlockingPair(t, chunk, 2*chunk, 3*8*chunk)
	data := randData(t, 8*chunk)
	if err := fsapi.WriteFile(bg, w, "/pinned.bin", data); err != nil {
		t.Fatal(err)
	}
	w.memCache.Clear()
	// Cache pressure while the upload is queued: unpinned LRU entries go,
	// the pinned queued version must survive.
	for i := 0; i < 4; i++ {
		w.diskCache.Put(fmt.Sprintf("pressure-%d", i), randData(t, 8*chunk))
	}
	if err := w.WaitForUploads(bg); err != nil {
		t.Fatal(err)
	}
	if errs := w.Stats().UploadErrors; errs != 0 {
		t.Fatalf("background upload errors under cache pressure: %d", errs)
	}
	got, err := fsapi.ReadFile(bg, r, "/pinned.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("pinned spilled version was lost under cache pressure")
	}
}

// TestUploaderFallbackWhenDiskCacheCannotHold: a version larger than the
// whole disk cache cannot be spilled; the task then carries the payload
// (the documented edge case) and the upload still succeeds.
func TestUploaderFallbackWhenDiskCacheCannotHold(t *testing.T) {
	const chunk = 4096
	w, r := nonBlockingPair(t, chunk, 2*chunk, 1024 /* smaller than any version */)
	data := randData(t, 4*chunk)
	if err := fsapi.WriteFile(bg, w, "/big-for-cache.bin", data); err != nil {
		t.Fatal(err)
	}
	if err := w.WaitForUploads(bg); err != nil {
		t.Fatal(err)
	}
	if errs := w.Stats().UploadErrors; errs != 0 {
		t.Fatalf("fallback upload errors: %d", errs)
	}
	got, err := fsapi.ReadFile(bg, r, "/big-for-cache.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fallback upload lost data")
	}
}

// TestGCReportsReclaimedFootprint: the batched sweep attributes the bytes
// and cloud objects it freed, and chunked versions are credited per chunk.
func TestGCReportsReclaimedFootprint(t *testing.T) {
	const chunk = 4096
	a, _ := testAgent(t, chunk, 2*chunk)
	// Two versions of a chunked file; KeepVersions defaults to 1, so one
	// 8-chunk version dies.
	data := randData(t, 8*chunk)
	for v := 0; v < 2; v++ {
		data[0] = byte(v) // distinct hashes
		if err := fsapi.WriteFile(bg, a, "/gc.bin", data); err != nil {
			t.Fatal(err)
		}
	}
	report, err := a.Collect(bg)
	if err != nil {
		t.Fatal(err)
	}
	if report.VersionsDeleted != 1 {
		t.Fatalf("VersionsDeleted = %d, want 1", report.VersionsDeleted)
	}
	// 8 chunks x preferred quorum of 3 clouds = 24 objects.
	if report.ReclaimedObjects != 24 {
		t.Fatalf("ReclaimedObjects = %d, want 24", report.ReclaimedObjects)
	}
	if report.ReclaimedBytes < int64(8*chunk) {
		t.Fatalf("ReclaimedBytes = %d, want >= payload size %d", report.ReclaimedBytes, 8*chunk)
	}
}

// TestGCObjectTriggerWeighsChunks: the object-count trigger fires a
// collection for a chunk-heavy workload that stays far under any byte
// trigger.
func TestGCObjectTriggerWeighsChunks(t *testing.T) {
	const chunk = 1024
	providers := make([]*cloudsim.Provider, 4)
	clients := make([]cloud.ObjectStore, 4)
	for i := range clients {
		providers[i] = cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		clients[i] = providers[i].MustClient(providers[i].CreateAccount("alice"))
	}
	mgr, err := depsky.New(depsky.Options{Clouds: clients, F: 1, ChunkSize: chunk})
	if err != nil {
		t.Fatal(err)
	}
	svc := coord.NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: depspace.NewSpace()}, "alice", nil))
	a, err := New(bg, Options{
		User:                 "alice",
		Mode:                 Blocking,
		Coordination:         svc,
		Storage:              storage.NewCloudOfClouds(mgr),
		StreamThresholdBytes: 2 * chunk,
		DiskCacheDir:         t.TempDir(),
		// A byte trigger far out of reach, an object trigger well within:
		// one 16-chunk write creates 16 chunks x 3 clouds = 48 objects.
		GC: GCPolicy{TriggerBytes: 1 << 40, TriggerObjects: 40, KeepVersions: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Unmount(bg) })

	if err := fsapi.WriteFile(bg, a, "/chunky.bin", randData(t, 16*chunk)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.Stats().GCsTriggered >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("object-count trigger never started a collection")
}
