// Package core implements the SCFS Agent, the client-side component that
// provides the shared cloud-backed file system of the paper: a POSIX-like
// API (internal/fsapi) with consistency-on-close semantics, whole-file
// caching in memory and on local disk, metadata and locks kept in a
// fault-tolerant coordination service, file data pushed to a single cloud or
// to a cloud-of-clouds backend, private name spaces for non-shared files,
// multi-versioning with a configurable garbage collector, and three modes of
// operation (blocking, non-blocking, non-sharing).
package core

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"os"
	"sync"
	"time"

	"scfs/internal/cache"
	"scfs/internal/clock"
	"scfs/internal/cloud"
	"scfs/internal/coord"
	"scfs/internal/fsapi"
	"scfs/internal/fsmeta"
	"scfs/internal/storage"
	"scfs/internal/telemetry"
)

// Mode selects the consistency/durability tradeoff of the agent (§3.1).
type Mode int

const (
	// Blocking waits for data and metadata to be safely in the cloud(s)
	// before close returns (durability level 2/3, strongest sharing
	// guarantees).
	Blocking Mode = iota
	// NonBlocking returns from close once the data is on the local disk and
	// queued for upload; metadata is updated and the lock released only
	// after the upload completes, so mutual exclusion is preserved.
	NonBlocking
	// NonSharing dispenses with the coordination service entirely: all
	// metadata lives in the user's private name space and uploads happen in
	// the background (a design similar to S3QL, but optionally over a
	// cloud-of-clouds).
	NonSharing
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Blocking:
		return "blocking"
	case NonBlocking:
		return "non-blocking"
	case NonSharing:
		return "non-sharing"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// GCPolicy configures the garbage collector (§2.5.3).
type GCPolicy struct {
	// TriggerBytes starts a collection after this many bytes have been
	// written by the agent (the paper's W parameter). Zero disables the
	// automatic trigger (Collect can still be called explicitly).
	TriggerBytes int64
	// TriggerObjects starts a collection after this many cloud objects have
	// been created by the agent's writes. It is the request-fee axis of the
	// trigger: a chunked (streamed) version creates one object per chunk per
	// charged cloud, each of which keeps costing per-request fees, so a
	// chunk-heavy workload can warrant collection long before TriggerBytes
	// fires. Zero disables it.
	TriggerObjects int64
	// KeepVersions is the number of most recent versions preserved per file
	// (the paper's V parameter). Minimum 1.
	KeepVersions int
}

// ACLPropagator pushes permission changes to the storage clouds so that
// access control is enforced by the providers and not only by the
// coordination service (§2.6). Implementations map the SCFS user to its
// per-provider canonical identifiers.
type ACLPropagator interface {
	PropagateACL(ctx context.Context, fileID string, hashes []string, user string, perm fsapi.Permission) error
}

// Options configures an Agent.
type Options struct {
	// User is the SCFS principal mounting the file system.
	User string
	// AgentID uniquely identifies this mount (lock ownership). Defaults to
	// User plus a random suffix.
	AgentID string
	// Mode selects blocking, non-blocking or non-sharing operation.
	Mode Mode
	// Coordination is the coordination service; required unless Mode is
	// NonSharing.
	Coordination coord.Service
	// Storage is the cloud storage backend (single cloud or cloud-of-clouds).
	Storage storage.VersionedStore
	// PNSStorage persists the user's private name space in the cloud; it is
	// required when UsePNS is true or Mode is NonSharing.
	PNSStorage storage.PNSStore
	// ACLPropagator optionally mirrors setfacl changes onto the cloud
	// objects themselves.
	ACLPropagator ACLPropagator

	// MemoryCacheBytes bounds the main-memory cache of open files
	// (default 256 MiB).
	MemoryCacheBytes int64
	// DiskCacheDir and DiskCacheBytes configure the local disk cache
	// (default: a temporary directory, 1 GiB).
	DiskCacheDir   string
	DiskCacheBytes int64
	// MetadataCacheTTL is the expiration of the short-lived metadata cache
	// (500 ms in the paper's experiments; 0 disables it).
	MetadataCacheTTL time.Duration
	// StreamThresholdBytes is the size above which file data moves through
	// the streaming data plane when the backend supports it: larger files
	// opened read-only are served by ranged cloud reads instead of a
	// whole-object fetch, and larger dirty files are streamed to the cloud
	// on close with bounded memory. Default 1 MiB; negative disables
	// streaming.
	StreamThresholdBytes int64
	// LockTTL is the lease attached to ephemeral write locks (default 60s).
	LockTTL time.Duration
	// ReadRetryInterval is the pause of the consistency-anchor read loop.
	ReadRetryInterval time.Duration

	// UsePNS keeps the metadata of non-shared files in a private name space
	// instead of the coordination service (§2.7).
	UsePNS bool
	// ForceSharedFn, if set, marks paths as shared regardless of their ACL;
	// the PNS experiments of §4.4 use it to control the sharing percentage.
	ForceSharedFn func(path string) bool

	// GC configures garbage collection.
	GC GCPolicy

	// Telemetry, when set, is the mount's metrics registry: the agent
	// registers pull gauges for its own state (upload queue depth, open
	// files, cache hits) and Stats embeds a full registry snapshot, so one
	// call answers both the file-system-level and the dispatch-level
	// questions.
	Telemetry *telemetry.Registry
	// Metered, when set, reports the per-provider metered consumption and
	// dollar spend of the storage backend; Stats surfaces it verbatim. The
	// facade wires it to the cloud-of-clouds manager's meters.
	Metered func() []ProviderSpend

	// Clock defaults to the real clock.
	Clock clock.Clock
}

// ProviderSpend is one storage provider's metered consumption priced under
// its rate card, as surfaced by Stats. It mirrors the backend's usage report
// without importing it.
type ProviderSpend struct {
	// Provider is the cloud's label (provider name, de-duplicated by the
	// backend when one provider hosts several accounts).
	Provider string
	// Usage is the provider-metered consumption of this mount's account.
	Usage cloud.Usage
	// Dollars prices Usage under the provider's rate card.
	Dollars float64
}

func (o Options) withDefaults() (Options, error) {
	if o.User == "" {
		return o, fmt.Errorf("core: Options.User is required")
	}
	if o.Storage == nil {
		return o, fmt.Errorf("core: Options.Storage is required")
	}
	if o.Mode != NonSharing && o.Coordination == nil {
		return o, fmt.Errorf("core: Options.Coordination is required in %s mode", o.Mode)
	}
	if (o.Mode == NonSharing || o.UsePNS) && o.PNSStorage == nil {
		return o, fmt.Errorf("core: Options.PNSStorage is required when private name spaces are used")
	}
	if o.AgentID == "" {
		o.AgentID = o.User + "-" + randomID()
	}
	if o.MemoryCacheBytes <= 0 {
		o.MemoryCacheBytes = 256 << 20
	}
	if o.DiskCacheBytes <= 0 {
		o.DiskCacheBytes = 1 << 30
	}
	if o.StreamThresholdBytes == 0 {
		o.StreamThresholdBytes = 1 << 20
	}
	if o.LockTTL <= 0 {
		o.LockTTL = 60 * time.Second
	}
	if o.ReadRetryInterval <= 0 {
		o.ReadRetryInterval = 50 * time.Millisecond
	}
	if o.GC.KeepVersions < 1 {
		o.GC.KeepVersions = 1
	}
	if o.Clock == nil {
		o.Clock = clock.Real()
	}
	return o, nil
}

func randomID() string {
	b := make([]byte, 6)
	if _, err := rand.Read(b); err != nil {
		return fmt.Sprintf("%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b)
}

// Stats aggregates the agent's activity counters; experiments use them to
// attribute latency and cost.
type Stats struct {
	CloudReads     int64
	CloudWrites    int64
	CloudBytesUp   int64
	CloudBytesDown int64

	CoordAccesses int64

	MemCacheHits    int64
	MemCacheMisses  int64
	DiskCacheHits   int64
	DiskCacheMisses int64
	MetaCacheHits   int64
	MetaCacheMisses int64

	FilesOpened   int64
	FilesClosed   int64
	BytesWritten  int64
	GCsTriggered  int64
	UploadsQueued int64
	UploadErrors  int64

	// Telemetry is a snapshot of the mount's metrics registry (empty when
	// the mount was built without one). It carries the dispatch-level
	// counters — per-cloud RPCs, hedges, retries, breaker transitions,
	// readahead activity — that the flat fields above do not.
	Telemetry telemetry.Snapshot
	// Spend is the per-provider metered consumption and priced dollar spend
	// of the storage backend, when it exposes meters.
	Spend []ProviderSpend
}

// Agent is the SCFS client mounted at a user machine. It implements
// fsapi.FileSystem.
type Agent struct {
	opts Options
	clk  clock.Clock

	// baseCtx scopes the agent's background work (the upload worker, GC
	// runs it starts itself) to the mount's lifetime; cancelling a single
	// operation's ctx never kills them, a forced Unmount does.
	//scfslint:ignore ctxdiscipline mount-lifetime root context, cancelled by Close/Unmount
	baseCtx    context.Context
	cancelBase context.CancelFunc

	memCache  *cache.Memory
	diskCache *cache.Disk
	metaCache *cache.Metadata

	// mu protects the namespace maps and counters below.
	mu         sync.Mutex
	openFiles  map[string]*openFile
	pns        *fsmeta.PNS
	pnsDirty   bool
	pnsVersion uint64
	closed     bool

	bytesSinceGC   int64
	objectsSinceGC int64
	gcRunning      bool

	stats struct {
		sync.Mutex
		s Stats
	}

	// Background uploader (non-blocking and non-sharing modes).
	uploadCh chan uploadTask
	uploadWG sync.WaitGroup
}

var _ fsapi.FileSystem = (*Agent)(nil)

// New mounts an SCFS agent with the given options. The ctx bounds only the
// mount itself (loading the private name space, acquiring the PNS lock);
// the mounted agent is independent of it and lives until Unmount.
func New(ctx context.Context, opts Options) (*Agent, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	diskDir := opts.DiskCacheDir
	if diskDir == "" {
		d, err := makeTempDir()
		if err != nil {
			return nil, err
		}
		diskDir = d
	}
	disk, err := cache.NewDisk(diskDir, opts.DiskCacheBytes)
	if err != nil {
		return nil, err
	}
	// With metrics on, every coordination access is also exported as a
	// coord_ops_total{backend,op} counter (satisfying the paper's §4 focus on
	// coordination accesses as the dominant metadata cost).
	if opts.Telemetry != nil && opts.Coordination != nil {
		opts.Coordination = coord.Instrument(opts.Coordination, opts.Telemetry)
	}
	// The agent's background workers outlive any single caller; their root
	// is the mount lifetime, torn down by Close/Unmount via cancelBase.
	//scfslint:ignore ctxdiscipline mount-lifetime root, cancelled by Close/Unmount
	baseCtx, cancelBase := context.WithCancel(context.Background())
	a := &Agent{
		opts:       opts,
		clk:        opts.Clock,
		baseCtx:    baseCtx,
		cancelBase: cancelBase,
		memCache:   cache.NewMemory(opts.MemoryCacheBytes),
		diskCache:  disk,
		metaCache:  cache.NewMetadata(opts.MetadataCacheTTL, opts.Clock),
		openFiles:  make(map[string]*openFile),
		uploadCh:   make(chan uploadTask, 1024),
	}
	// Evicted open-file contents fall back to the disk cache.
	a.memCache.OnEvict = func(key string, value []byte) {
		_ = a.diskCache.Put(key, value)
	}
	if opts.Telemetry != nil {
		a.registerGauges(opts.Telemetry)
	}
	if opts.UsePNS || opts.Mode == NonSharing {
		if err := a.loadPNS(ctx); err != nil {
			cancelBase()
			return nil, err
		}
	}
	a.uploadWG.Add(1)
	go a.uploadWorker()
	return a, nil
}

func makeTempDir() (string, error) {
	d, err := os.MkdirTemp("", "scfs-cache-")
	if err != nil {
		return "", fmt.Errorf("core: creating disk cache directory: %w", err)
	}
	return d, nil
}

// User returns the mounting principal.
func (a *Agent) User() string { return a.opts.User }

// Mode returns the operating mode.
func (a *Agent) Mode() Mode { return a.opts.Mode }

// Stats returns a snapshot of the activity counters, merging in the
// coordination-service access count and cache statistics.
func (a *Agent) Stats() Stats {
	a.stats.Lock()
	s := a.stats.s
	a.stats.Unlock()
	if a.opts.Coordination != nil {
		s.CoordAccesses = a.opts.Coordination.Stats().Total()
	}
	s.MemCacheHits, s.MemCacheMisses = a.memCache.Stats()
	s.DiskCacheHits, s.DiskCacheMisses = a.diskCache.Stats()
	s.MetaCacheHits, s.MetaCacheMisses = a.metaCache.Stats()
	if a.opts.Telemetry != nil {
		s.Telemetry = a.opts.Telemetry.Snapshot()
	}
	if a.opts.Metered != nil {
		s.Spend = a.opts.Metered()
	}
	return s
}

// registerGauges publishes the agent's own state as pull gauges: values are
// read at snapshot time, so the file-system hot path is untouched.
func (a *Agent) registerGauges(reg *telemetry.Registry) {
	reg.RegisterGauge("agent_upload_queue_depth", func() int64 {
		return int64(len(a.uploadCh))
	})
	reg.RegisterGauge("agent_open_files", func() int64 {
		a.mu.Lock()
		defer a.mu.Unlock()
		return int64(len(a.openFiles))
	})
	stat := func(pick func(Stats) int64) func() int64 {
		return func() int64 {
			a.stats.Lock()
			defer a.stats.Unlock()
			return pick(a.stats.s)
		}
	}
	reg.RegisterGauge("agent_gcs_triggered_total", stat(func(s Stats) int64 { return s.GCsTriggered }))
	reg.RegisterGauge("agent_uploads_queued_total", stat(func(s Stats) int64 { return s.UploadsQueued }))
	reg.RegisterGauge("agent_upload_errors_total", stat(func(s Stats) int64 { return s.UploadErrors }))
	reg.RegisterGauge("agent_bytes_written_total", stat(func(s Stats) int64 { return s.BytesWritten }))
	reg.RegisterGauge("agent_cloud_reads_total", stat(func(s Stats) int64 { return s.CloudReads }))
	reg.RegisterGauge("agent_cloud_writes_total", stat(func(s Stats) int64 { return s.CloudWrites }))
	cachePair := func(name string, stats func() (int64, int64)) {
		reg.RegisterGauge(telemetry.Name(name, "result", "hit"), func() int64 { h, _ := stats(); return h })
		reg.RegisterGauge(telemetry.Name(name, "result", "miss"), func() int64 { _, m := stats(); return m })
	}
	cachePair("agent_mem_cache_lookups", a.memCache.Stats)
	cachePair("agent_disk_cache_lookups", a.diskCache.Stats)
	cachePair("agent_meta_cache_lookups", a.metaCache.Stats)
}

func (a *Agent) addStat(f func(*Stats)) {
	a.stats.Lock()
	f(&a.stats.s)
	a.stats.Unlock()
}

// Unmount flushes pending uploads and the private name space, then releases
// resources. The agent must not be used afterwards. Cancelling ctx turns
// the graceful drain into a forced one: the in-flight background uploads
// are aborted (their versions stay unanchored and will be re-uploaded by a
// future mount's dirty-cache recovery or simply superseded) and Unmount
// returns ctx.Err().
func (a *Agent) Unmount(ctx context.Context) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	a.mu.Unlock()

	close(a.uploadCh)
	drained := make(chan struct{})
	go func() { a.uploadWG.Wait(); close(drained) }()
	var forced error
	flushCtx := ctx
	select {
	case <-drained:
	case <-ctx.Done():
		forced = ctx.Err()
		a.cancelBase() // abort the in-flight uploads
		<-drained
		// The caller's ctx is dead, but the private name space should not
		// be lost if it can still be flushed quickly: give the final flush
		// its own short deadline.
		var cancelFlush context.CancelFunc
		//scfslint:ignore ctxdiscipline caller ctx is already dead; final PNS flush gets its own short deadline
		flushCtx, cancelFlush = context.WithTimeout(context.Background(), 5*time.Second)
		defer cancelFlush()
	}
	a.cancelBase()

	// Final PNS flush.
	if a.pns != nil {
		if err := a.flushPNS(flushCtx); err != nil {
			return err
		}
	}
	return forced
}

// isShared decides whether a path's metadata must live in the coordination
// service (shared) or may live in the PNS (private).
func (a *Agent) isShared(md *fsmeta.Metadata) bool {
	if a.opts.Mode == NonSharing {
		return false
	}
	if !a.opts.UsePNS {
		return true // without PNS every entry goes to the coordination service
	}
	if a.opts.ForceSharedFn != nil && a.opts.ForceSharedFn(md.Path) {
		return true
	}
	return md.IsShared()
}

func (a *Agent) checkOpen(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return fsapi.ErrClosed
	}
	return nil
}
