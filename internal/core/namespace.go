package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"scfs/internal/fsapi"
	"scfs/internal/fsmeta"
)

// Namespace operations of the SCFS agent: directories, deletion, renaming,
// stat/readdir and the setfacl/getfacl access-control calls of §2.6.

// Mkdir implements fsapi.FileSystem.
func (a *Agent) Mkdir(ctx context.Context, path string) error {
	if err := a.checkOpen(ctx); err != nil {
		return err
	}
	path = fsmeta.Clean(path)
	if path == "/" {
		return fsapi.ErrExist
	}
	if _, err := a.getMetadata(ctx, path, false); err == nil {
		return fsapi.ErrExist
	} else if !errors.Is(err, fsapi.ErrNotExist) {
		return err
	}
	parentPath := fsmeta.Clean(parentDir(path))
	parent, err := a.getMetadata(ctx, parentPath, true)
	if err != nil {
		return err
	}
	if !parent.IsDir() {
		return fsapi.ErrNotDir
	}
	if parentPath != "/" && !parent.CanWrite(a.opts.User) {
		return fsapi.ErrPermission
	}
	md := fsmeta.NewDir(path, a.opts.User, a.clk.Now())
	return a.putMetadata(ctx, md)
}

// Rmdir implements fsapi.FileSystem.
func (a *Agent) Rmdir(ctx context.Context, path string) error {
	if err := a.checkOpen(ctx); err != nil {
		return err
	}
	path = fsmeta.Clean(path)
	if path == "/" {
		return fsapi.ErrInvalid
	}
	md, err := a.getMetadata(ctx, path, false)
	if err != nil {
		return err
	}
	if !md.IsDir() {
		return fsapi.ErrNotDir
	}
	if !md.CanWrite(a.opts.User) {
		return fsapi.ErrPermission
	}
	children, err := a.listMetadata(ctx, path)
	if err != nil {
		return err
	}
	if len(children) > 0 {
		return fsapi.ErrNotEmpty
	}
	return a.deleteMetadata(ctx, path)
}

// Unlink implements fsapi.FileSystem. Removed files are only marked as
// deleted in their metadata (multi-versioning, §2.1); the garbage collector
// reclaims their space later.
func (a *Agent) Unlink(ctx context.Context, path string) error {
	if err := a.checkOpen(ctx); err != nil {
		return err
	}
	path = fsmeta.Clean(path)
	md, err := a.getMetadata(ctx, path, false)
	if err != nil {
		return err
	}
	if md.IsDir() {
		return fsapi.ErrIsDir
	}
	if !md.CanWrite(a.opts.User) {
		return fsapi.ErrPermission
	}
	md.Deleted = true
	md.Mtime = a.clk.Now()
	if err := a.putMetadata(ctx, md); err != nil {
		return err
	}
	a.metaCache.Invalidate(path)
	a.memCache.Remove(cacheKey(md.FileID, md.Hash))
	return nil
}

// Rename implements fsapi.FileSystem for both files and directories. For
// directories the whole subtree is rewritten, using the coordination
// service's rename trigger (§3.2) and the PNS prefix rename.
func (a *Agent) Rename(ctx context.Context, oldPath, newPath string) error {
	if err := a.checkOpen(ctx); err != nil {
		return err
	}
	oldPath, newPath = fsmeta.Clean(oldPath), fsmeta.Clean(newPath)
	if oldPath == "/" || newPath == "/" || oldPath == newPath {
		return fsapi.ErrInvalid
	}
	if fsmeta.IsChildOf(newPath, oldPath) {
		return fsapi.ErrInvalid
	}
	md, err := a.getMetadata(ctx, oldPath, false)
	if err != nil {
		return err
	}
	if !md.CanWrite(a.opts.User) {
		return fsapi.ErrPermission
	}
	if _, err := a.getMetadata(ctx, newPath, false); err == nil {
		return fsapi.ErrExist
	} else if !errors.Is(err, fsapi.ErrNotExist) {
		return err
	}
	newParent, err := a.getMetadata(ctx, parentDir(newPath), true)
	if err != nil {
		return err
	}
	if !newParent.IsDir() {
		return fsapi.ErrNotDir
	}

	// Move the entry itself.
	wasInPNS := a.pnsFor(md)
	if err := a.deleteMetadata(ctx, oldPath); err != nil {
		return err
	}
	md.Path = newPath
	if err := a.putMetadata(ctx, md); err != nil {
		return err
	}
	_ = wasInPNS

	// Move the subtree for directories.
	if md.IsDir() {
		if a.opts.Coordination != nil {
			if _, err := a.opts.Coordination.RenamePrefix(ctx, oldPath, newPath); err != nil {
				return fmt.Errorf("core: renaming subtree %q: %w", oldPath, err)
			}
		}
		a.mu.Lock()
		if a.pns != nil {
			if n := a.pns.RenamePrefix(oldPath, newPath); n > 0 {
				a.pnsDirty = true
			}
		}
		a.mu.Unlock()
		a.metaCache.InvalidateAll()
	} else {
		a.metaCache.Invalidate(oldPath)
		a.metaCache.Invalidate(newPath)
	}
	return nil
}

func parentDir(p string) string {
	p = fsmeta.Clean(p)
	idx := strings.LastIndex(p, "/")
	if idx <= 0 {
		return "/"
	}
	return p[:idx]
}

// Stat implements fsapi.FileSystem.
func (a *Agent) Stat(ctx context.Context, path string) (fsapi.FileInfo, error) {
	if err := a.checkOpen(ctx); err != nil {
		return fsapi.FileInfo{}, err
	}
	md, err := a.getMetadata(ctx, path, true)
	if err != nil {
		return fsapi.FileInfo{}, err
	}
	if !md.CanRead(a.opts.User) {
		return fsapi.FileInfo{}, fsapi.ErrPermission
	}
	return md.FileInfo(), nil
}

// ReadDir implements fsapi.FileSystem.
func (a *Agent) ReadDir(ctx context.Context, path string) ([]fsapi.FileInfo, error) {
	if err := a.checkOpen(ctx); err != nil {
		return nil, err
	}
	md, err := a.getMetadata(ctx, path, true)
	if err != nil {
		return nil, err
	}
	if !md.IsDir() {
		return nil, fsapi.ErrNotDir
	}
	children, err := a.listMetadata(ctx, path)
	if err != nil {
		return nil, err
	}
	out := make([]fsapi.FileInfo, 0, len(children))
	for _, c := range children {
		if !c.CanRead(a.opts.User) && c.Owner != a.opts.User {
			continue
		}
		out = append(out, c.FileInfo())
	}
	return out, nil
}

// SetFacl implements fsapi.FileSystem: only the owner may change permissions;
// the change is written to the coordination service (which enforces it) and,
// when an ACL propagator is configured, mirrored on the cloud objects holding
// the file data (§2.6). Sharing status changes may move the metadata between
// the private name space and the coordination service (§2.7).
func (a *Agent) SetFacl(ctx context.Context, path, user string, perm fsapi.Permission) error {
	if err := a.checkOpen(ctx); err != nil {
		return err
	}
	path = fsmeta.Clean(path)
	md, err := a.getMetadata(ctx, path, false)
	if err != nil {
		return err
	}
	if md.Owner != a.opts.User {
		return fsapi.ErrPermission
	}
	wasShared := a.isShared(md)
	md.SetACL(user, perm)
	nowShared := a.isShared(md)

	if err := a.putMetadata(ctx, md); err != nil {
		return err
	}
	// If the entry stopped being shared, pull it back into the PNS and drop
	// the coordination-service tuple.
	if wasShared && !nowShared && a.opts.UsePNS && a.opts.Coordination != nil {
		if err := a.opts.Coordination.DeleteMetadata(ctx, path); err != nil {
			return fmt.Errorf("core: retiring coordination tuple for %q: %w", path, err)
		}
		a.mu.Lock()
		a.pns.Put(md)
		a.pnsDirty = true
		a.mu.Unlock()
	}
	a.metaCache.Invalidate(path)

	if a.opts.ACLPropagator != nil && md.Type == fsapi.TypeFile {
		hashes := make([]string, 0, len(md.Versions))
		for _, v := range md.Versions {
			hashes = append(hashes, v.Hash)
		}
		if err := a.opts.ACLPropagator.PropagateACL(ctx, md.FileID, hashes, user, perm); err != nil {
			return fmt.Errorf("core: propagating ACL of %q to the clouds: %w", path, err)
		}
	}
	return nil
}

// GetFacl implements fsapi.FileSystem.
func (a *Agent) GetFacl(ctx context.Context, path string) ([]fsapi.ACLEntry, error) {
	if err := a.checkOpen(ctx); err != nil {
		return nil, err
	}
	md, err := a.getMetadata(ctx, path, true)
	if err != nil {
		return nil, err
	}
	if !md.CanRead(a.opts.User) {
		return nil, fsapi.ErrPermission
	}
	return append([]fsapi.ACLEntry(nil), md.ACL...), nil
}
