package core

import (
	"bytes"
	"context"
	"crypto/rand"
	"fmt"
	"io"
	"testing"
	"time"

	"scfs/internal/cloud"
	"scfs/internal/cloudsim"
	"scfs/internal/coord"
	"scfs/internal/depsky"
	"scfs/internal/depspace"
	"scfs/internal/fsapi"
	"scfs/internal/storage"
)

// testAgent mounts a blocking-mode agent over a 4-cloud CoC backend with a
// small chunk size and streaming threshold, so streamed paths trigger at
// test-friendly sizes.
var bg = context.Background()

func testAgent(t *testing.T, chunkSize int, threshold int64) (*Agent, []*cloudsim.Provider) {
	t.Helper()
	providers := make([]*cloudsim.Provider, 4)
	clients := make([]cloud.ObjectStore, 4)
	for i := range clients {
		providers[i] = cloudsim.NewProvider(cloudsim.Options{Name: fmt.Sprintf("c%d", i)})
		clients[i] = providers[i].MustClient(providers[i].CreateAccount("alice"))
	}
	mgr, err := depsky.New(depsky.Options{Clouds: clients, F: 1, ChunkSize: chunkSize})
	if err != nil {
		t.Fatal(err)
	}
	svc := coord.NewDepSpaceService(depspace.NewClient(&depspace.LocalInvoker{Space: depspace.NewSpace()}, "alice", nil))
	a, err := New(bg, Options{
		User:                 "alice",
		Mode:                 Blocking,
		Coordination:         svc,
		Storage:              storage.NewCloudOfClouds(mgr),
		StreamThresholdBytes: threshold,
		MetadataCacheTTL:     500 * time.Millisecond,
		DiskCacheDir:         t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Unmount(bg) })
	return a, providers
}

func randData(t *testing.T, n int) []byte {
	t.Helper()
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAgentStreamedWriteAndRangedRead drives a large file through the full
// agent stack: close streams it to the clouds chunk-by-chunk, and a
// read-only open on a cold cache serves ReadAt through ranged cloud reads
// without pulling the whole object.
func TestAgentStreamedWriteAndRangedRead(t *testing.T) {
	const chunk = 4096
	a, providers := testAgent(t, chunk, 2*chunk)
	data := randData(t, 16*chunk+99)
	if err := fsapi.WriteFile(bg, a, "/big.bin", data); err != nil {
		t.Fatal(err)
	}

	// Reading through the cache returns identical bytes.
	got, err := fsapi.ReadFile(bg, a, "/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cached round trip mismatch")
	}

	// Evict local caches to force the ranged cloud path.
	a.memCache.Clear()
	a.diskCache.Clear()

	account := providers[0].CreateAccount("alice")
	before := providers[0].Usage(account).GetRequests
	h, err := a.Open(bg, "/big.bin", fsapi.ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	info, err := h.Stat(bg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len(data)) {
		t.Fatalf("lazy Stat size = %d, want %d", info.Size, len(data))
	}
	buf := make([]byte, 100)
	if _, err := h.ReadAt(bg, buf, int64(5*chunk+10)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, data[5*chunk+10:5*chunk+110]) {
		t.Fatal("ranged ReadAt mismatch")
	}
	if err := h.Close(bg); err != nil {
		t.Fatal(err)
	}
	// A 100-byte read of a 17-chunk file must not fetch every chunk: the
	// metadata object plus at most a couple of chunk frames per cloud.
	if gets := providers[0].Usage(account).GetRequests - before; gets > 4 {
		t.Fatalf("small ranged read issued %d gets on one cloud", gets)
	}

	// The same file read fully (cold caches again) still matches.
	a.memCache.Clear()
	a.diskCache.Clear()
	got, err = fsapi.ReadFile(bg, a, "/big.bin")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cold full read mismatch")
	}
}

// TestAgentWritableOpenMaterializesLazyFile covers the mixed case: while a
// read-only handle serves ranged reads, a writable open of the same path
// must materialize the contents and both handles must stay correct.
func TestAgentWritableOpenMaterializesLazyFile(t *testing.T) {
	const chunk = 4096
	a, _ := testAgent(t, chunk, chunk)
	data := randData(t, 6*chunk)
	if err := fsapi.WriteFile(bg, a, "/f", data); err != nil {
		t.Fatal(err)
	}
	a.memCache.Clear()
	a.diskCache.Clear()

	ro, err := a.Open(bg, "/f", fsapi.ReadOnly)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := a.Open(bg, "/f", fsapi.ReadWrite)
	if err != nil {
		t.Fatal(err)
	}
	patch := []byte("PATCHED")
	if _, err := rw.WriteAt(bg, patch, 10); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), data...)
	copy(want[10:], patch)
	buf := make([]byte, 64)
	if _, err := ro.ReadAt(bg, buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want[:64]) {
		t.Fatal("read-only handle does not observe the write")
	}
	if err := ro.Close(bg); err != nil {
		t.Fatal(err)
	}
	if err := rw.Close(bg); err != nil {
		t.Fatal(err)
	}
	got, err := fsapi.ReadFile(bg, a, "/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("patched contents lost")
	}
}

// TestReadDirWarmsStatBurst pins the batched-metadata behaviour: after a
// ReadDir, stating every listed entry is served from the metadata cache
// with no extra coordination reads.
func TestReadDirWarmsStatBurst(t *testing.T) {
	a, _ := testAgent(t, 4096, 1<<20)
	if err := a.Mkdir(bg, "/dir"); err != nil {
		t.Fatal(err)
	}
	const files = 12
	for i := 0; i < files; i++ {
		if err := fsapi.WriteFile(bg, a, fmt.Sprintf("/dir/f%02d", i), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := a.ReadDir(bg, "/dir")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != files {
		t.Fatalf("ReadDir returned %d entries", len(entries))
	}
	before := a.Stats().CoordAccesses
	for _, e := range entries {
		if _, err := a.Stat(bg, e.Path); err != nil {
			t.Fatal(err)
		}
	}
	after := a.Stats().CoordAccesses
	if after != before {
		t.Fatalf("stat burst after readdir cost %d coordination accesses, want 0", after-before)
	}
}

// TestCollectBatchSweep checks the GC deletes old versions through the
// batched sweep and the storage footprint actually shrinks.
func TestCollectBatchSweep(t *testing.T) {
	a, providers := testAgent(t, 4096, 1<<20)
	a.opts.GC.KeepVersions = 1
	const files, versions = 5, 3
	for i := 0; i < files; i++ {
		for v := 0; v < versions; v++ {
			if err := fsapi.WriteFile(bg, a, fmt.Sprintf("/f%d", i), randData(t, 2000+i+v)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// One deleted file: its surviving versions must be purged entirely.
	if err := fsapi.WriteFile(bg, a, "/dead", randData(t, 1500)); err != nil {
		t.Fatal(err)
	}
	if err := a.Unlink(bg, "/dead"); err != nil {
		t.Fatal(err)
	}
	before := providers[0].ObjectCount()
	report, err := a.Collect(bg)
	if err != nil {
		t.Fatal(err)
	}
	wantDeleted := files*(versions-1) + 1
	if report.VersionsDeleted != wantDeleted {
		t.Fatalf("VersionsDeleted = %d, want %d", report.VersionsDeleted, wantDeleted)
	}
	if report.FilesPurged != 1 {
		t.Fatalf("FilesPurged = %d, want 1", report.FilesPurged)
	}
	if after := providers[0].ObjectCount(); after >= before {
		t.Fatalf("object count %d -> %d, want fewer", before, after)
	}
	// Each surviving file still reads back.
	for i := 0; i < files; i++ {
		if _, err := fsapi.ReadFile(bg, a, fmt.Sprintf("/f%d", i)); err != nil {
			t.Fatalf("file %d unreadable after GC: %v", i, err)
		}
	}
}

// TestTruncateOpenOnLazyFile pins the fix for truncate-while-lazy: opening
// a lazily-served large file with Truncate must expose an empty file, not
// the stale pre-truncate cloud contents.
func TestTruncateOpenOnLazyFile(t *testing.T) {
	const chunk = 4096
	a, _ := testAgent(t, chunk, chunk)
	data := randData(t, 5*chunk)
	if err := fsapi.WriteFile(bg, a, "/t", data); err != nil {
		t.Fatal(err)
	}
	a.memCache.Clear()
	a.diskCache.Clear()

	ro, err := a.Open(bg, "/t", fsapi.ReadOnly) // attaches the ranged reader
	if err != nil {
		t.Fatal(err)
	}
	tr, err := a.Open(bg, "/t", fsapi.ReadWrite|fsapi.Truncate)
	if err != nil {
		t.Fatal(err)
	}
	info, err := tr.Stat(bg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 0 {
		t.Fatalf("size after truncate = %d, want 0", info.Size)
	}
	if _, err := tr.ReadAt(bg, make([]byte, 1), 0); err != io.EOF {
		t.Fatalf("read of truncated file: %v, want EOF", err)
	}
	if _, err := tr.WriteAt(bg, []byte("fresh"), 0); err != nil {
		t.Fatal(err)
	}
	if err := ro.Close(bg); err != nil {
		t.Fatal(err)
	}
	if err := tr.Close(bg); err != nil {
		t.Fatal(err)
	}
	got, err := fsapi.ReadFile(bg, a, "/t")
	if err != nil || string(got) != "fresh" {
		t.Fatalf("after truncate+write: %q, %v", got, err)
	}
}
