package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"

	"scfs/internal/clock"
	"scfs/internal/coord"
	"scfs/internal/fsapi"
	"scfs/internal/fsmeta"
	"scfs/internal/seccrypto"
	"scfs/internal/storage"
)

// openFile is the per-path in-memory state shared by all handles opened on
// the same path by this agent. SCFS reads and writes whole files: the full
// contents live here while the file is open (durability level 0) — except
// for large files opened read-only over a range-capable backend, whose
// contents are served through lazy (it stays non-nil until the last handle
// closes; data takes precedence once a writable open materializes the file).
type openFile struct {
	agent    *Agent
	path     string
	meta     *fsmeta.Metadata
	data     []byte
	lazy     storage.ReaderAtCloser
	dirty    bool
	locked   bool
	writable bool
	refs     int
}

// handle is one open descriptor over an openFile; it implements fsapi.Handle.
type handle struct {
	of     *openFile
	flags  fsapi.OpenFlag
	closed bool
}

var _ fsapi.Handle = (*handle)(nil)

// cacheKey addresses a specific version of a file in the caches, so a cached
// copy is valid exactly when its hash matches the metadata (the validation
// step of §2.5.1).
func cacheKey(fileID, hash string) string { return fileID + "@" + hash }

// Open implements fsapi.FileSystem, following the open flow of Figure 4:
// read the metadata, optionally acquire the write lock, and bring the file
// data into the local cache.
func (a *Agent) Open(ctx context.Context, path string, flags fsapi.OpenFlag) (fsapi.Handle, error) {
	if err := a.checkOpen(ctx); err != nil {
		return nil, err
	}
	path = fsmeta.Clean(path)
	if path == "/" {
		return nil, fsapi.ErrIsDir
	}

	a.mu.Lock()
	existing, isOpen := a.openFiles[path]
	a.mu.Unlock()

	md, err := a.getMetadata(ctx, path, true)
	created := false
	switch {
	case err == nil:
		if flags&fsapi.Create != 0 && flags&fsapi.Exclusive != 0 {
			return nil, fsapi.ErrExist
		}
	case errors.Is(err, fsapi.ErrNotExist):
		if flags&fsapi.Create == 0 {
			return nil, fsapi.ErrNotExist
		}
		md, err = a.createFile(ctx, path)
		if err != nil {
			return nil, err
		}
		created = true
	default:
		return nil, err
	}
	if md.IsDir() {
		return nil, fsapi.ErrIsDir
	}
	if flags.Writable() && !md.CanWrite(a.opts.User) {
		return nil, fsapi.ErrPermission
	}
	if flags.Readable() && !md.CanRead(a.opts.User) {
		return nil, fsapi.ErrPermission
	}

	// Acquire the write lock for shared files opened for writing (step 2 of
	// the open flow). Private (PNS) files are invisible to other users and
	// need no lock.
	needLock := flags.Writable() && a.opts.Coordination != nil && a.isShared(md)
	if needLock && !(isOpen && existing.locked) {
		if err := a.opts.Coordination.TryLock(ctx, path, a.opts.AgentID, a.opts.LockTTL); err != nil {
			if errors.Is(err, coord.ErrLockHeld) {
				return nil, fsapi.ErrLocked
			}
			return nil, fmt.Errorf("core: locking %q: %w", path, err)
		}
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	of, ok := a.openFiles[path]
	if !ok {
		of = &openFile{agent: a, path: path, meta: md}
		a.openFiles[path] = of
	}
	of.refs++
	if needLock {
		of.locked = true
	}
	if flags.Writable() {
		of.writable = true
	}

	// Step 3: bring the file data into memory — or, for large files opened
	// read-only over a range-capable backend, attach a ranged reader so the
	// whole object never has to be resident.
	if of.refs == 1 || (of.data == nil && of.lazy == nil) {
		switch {
		case created || md.Hash == "":
			of.data = nil
		case flags&fsapi.Truncate != 0:
			of.data = nil
			of.dirty = true
		default:
			data, lazy, err := a.fetchForOpen(ctx, md, flags)
			if err != nil {
				of.refs--
				if of.refs == 0 {
					delete(a.openFiles, path)
				}
				return nil, err
			}
			of.data, of.lazy = data, lazy
		}
	} else if flags&fsapi.Truncate != 0 {
		of.data = nil
		if of.lazy != nil {
			// A non-nil empty buffer, not nil: nil-with-lazy means "serve
			// reads through the ranged reader", which would resurrect the
			// pre-truncate contents.
			of.data = []byte{}
		}
		of.dirty = true
	}
	// A writable open while the contents are served lazily materializes the
	// full data (writes mutate the in-memory copy); the ranged reader stays
	// attached for handles already reading through it and is closed with
	// the last handle.
	if flags.Writable() && !of.dirty && of.data == nil && of.lazy != nil {
		data, err := a.fetchData(ctx, md)
		if err != nil {
			of.refs--
			if of.refs == 0 {
				lazyToClose := of.lazy
				delete(a.openFiles, path)
				defer lazyToClose.Close()
			}
			return nil, err
		}
		of.data = data
	}
	of.meta = md
	a.addStat(func(s *Stats) { s.FilesOpened++ })
	return &handle{of: of, flags: flags}, nil
}

// createFile allocates metadata for a new empty file owned by the caller.
func (a *Agent) createFile(ctx context.Context, path string) (*fsmeta.Metadata, error) {
	parent, err := a.getMetadata(ctx, fsmeta.Clean(path[:max(1, lastSlash(path))]), true)
	if err != nil {
		if errors.Is(err, fsapi.ErrNotExist) {
			return nil, fsapi.ErrNotExist
		}
		return nil, err
	}
	if !parent.IsDir() {
		return nil, fsapi.ErrNotDir
	}
	if !parent.CanWrite(a.opts.User) && parent.Path != "/" {
		return nil, fsapi.ErrPermission
	}
	md := fsmeta.NewFile(path, a.opts.User, "f-"+randomID(), a.clk.Now())
	if err := a.putMetadata(ctx, md); err != nil {
		return nil, err
	}
	return md, nil
}

func lastSlash(p string) int {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' {
			return i
		}
	}
	return -1
}

// cachedData returns the contents of the current version of md from the
// memory or disk cache, if present and valid.
func (a *Agent) cachedData(md *fsmeta.Metadata) ([]byte, bool) {
	key := cacheKey(md.FileID, md.Hash)
	if data, ok := a.memCache.Get(key); ok {
		return data, true
	}
	if data, ok := a.diskCache.Get(key); ok {
		if seccrypto.VerifyHash(data, md.Hash) {
			a.memCache.Put(key, data)
			return data, true
		}
		a.diskCache.Remove(key)
	}
	return nil, false
}

// fetchData returns the contents of the current version of md, looking at the
// memory cache, then the disk cache, then the cloud backend (with the
// consistency-anchor retry loop of Figure 3).
func (a *Agent) fetchData(ctx context.Context, md *fsmeta.Metadata) ([]byte, error) {
	if data, ok := a.cachedData(md); ok {
		return data, nil
	}
	key := cacheKey(md.FileID, md.Hash)
	// Cloud read: loop until the version anchored in the metadata becomes
	// visible (the storage clouds are only eventually consistent).
	const maxAttempts = 120
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		data, err := a.opts.Storage.ReadVersion(ctx, md.FileID, md.Hash)
		if err == nil {
			a.addStat(func(s *Stats) { s.CloudReads++; s.CloudBytesDown += int64(len(data)) })
			a.diskCache.Put(key, data)
			a.memCache.Put(key, data)
			return data, nil
		}
		lastErr = err
		if !errors.Is(err, storage.ErrVersionNotFound) {
			return nil, fmt.Errorf("core: reading %q from the cloud: %w", md.Path, err)
		}
		if err := clock.SleepCtx(ctx, a.clk, a.opts.ReadRetryInterval); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("core: version of %q never became visible: %w", md.Path, lastErr)
}

// fetchForOpen brings a file's contents into reach for a new open: cached
// copies win, large read-only opens over a range-capable backend get a lazy
// ranged reader (so ReadAt fetches only covering chunks), and everything
// else takes the whole-object fetch path. Exactly one of data and lazy is
// non-nil on success.
func (a *Agent) fetchForOpen(ctx context.Context, md *fsmeta.Metadata, flags fsapi.OpenFlag) ([]byte, storage.ReaderAtCloser, error) {
	if data, ok := a.cachedData(md); ok {
		return data, nil, nil
	}
	if !flags.Writable() && a.opts.StreamThresholdBytes >= 0 && md.Size > a.opts.StreamThresholdBytes {
		if ro, ok := a.opts.Storage.(storage.RangeOpener); ok {
			lazy, err := a.openRanged(ctx, ro, md)
			if err == nil {
				return nil, lazy, nil
			}
			if ctx.Err() != nil {
				return nil, nil, err
			}
			// Fall back to the whole-object path on any other ranged-open
			// error.
		}
	}
	data, err := a.fetchData(ctx, md)
	return data, nil, err
}

// openRanged opens a ranged reader over the anchored version of md, waiting
// out eventual consistency like the whole-object read loop does.
func (a *Agent) openRanged(ctx context.Context, ro storage.RangeOpener, md *fsmeta.Metadata) (storage.ReaderAtCloser, error) {
	const maxAttempts = 120
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		ra, err := ro.OpenVersionAt(ctx, md.FileID, md.Hash)
		if err == nil {
			a.addStat(func(s *Stats) { s.CloudReads++ })
			return ra, nil
		}
		lastErr = err
		if !errors.Is(err, storage.ErrVersionNotFound) {
			return nil, fmt.Errorf("core: opening %q for ranged reads: %w", md.Path, err)
		}
		if err := clock.SleepCtx(ctx, a.clk, a.opts.ReadRetryInterval); err != nil {
			return nil, err
		}
	}
	return nil, fmt.Errorf("core: version of %q never became visible: %w", md.Path, lastErr)
}

// --- handle operations ---

// ReadAt implements fsapi.Handle. Reads are served from the in-memory copy
// (Figure 4: read only touches the memory cache) — except for large files
// opened read-only, whose ranged reader fetches only the chunks covering
// the requested range from the cloud backend.
func (h *handle) ReadAt(ctx context.Context, p []byte, off int64) (int, error) {
	a := h.of.agent
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	a.mu.Lock()
	if h.closed {
		a.mu.Unlock()
		return 0, fsapi.ErrClosed
	}
	if !h.flags.Readable() {
		a.mu.Unlock()
		return 0, fsapi.ErrPermission
	}
	if off < 0 {
		a.mu.Unlock()
		return 0, fsapi.ErrInvalid
	}
	if h.of.data == nil && h.of.lazy != nil {
		// Ranged read outside the agent lock: the reader is safe for
		// concurrent use and may touch the network.
		lazy := h.of.lazy
		a.mu.Unlock()
		return lazy.ReadAtContext(ctx, p, off)
	}
	defer a.mu.Unlock()
	if off >= int64(len(h.of.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.of.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// WriteAt implements fsapi.Handle. Writes update only the memory cache and
// the cached metadata (durability level 0).
func (h *handle) WriteAt(ctx context.Context, p []byte, off int64) (int, error) {
	a := h.of.agent
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if h.closed {
		return 0, fsapi.ErrClosed
	}
	if !h.flags.Writable() {
		return 0, fsapi.ErrReadOnly
	}
	if off < 0 {
		return 0, fsapi.ErrInvalid
	}
	end := off + int64(len(p))
	if end > int64(len(h.of.data)) {
		grown := make([]byte, end)
		copy(grown, h.of.data)
		h.of.data = grown
	}
	copy(h.of.data[off:end], p)
	h.of.dirty = true
	h.of.meta.Size = int64(len(h.of.data))
	h.of.meta.Mtime = a.clk.Now()
	a.addStat(func(s *Stats) { s.BytesWritten += int64(len(p)) })
	return len(p), nil
}

// Truncate implements fsapi.Handle.
func (h *handle) Truncate(ctx context.Context, size int64) error {
	a := h.of.agent
	if err := ctx.Err(); err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if h.closed {
		return fsapi.ErrClosed
	}
	if !h.flags.Writable() {
		return fsapi.ErrReadOnly
	}
	if size < 0 {
		return fsapi.ErrInvalid
	}
	cur := int64(len(h.of.data))
	switch {
	case size < cur:
		h.of.data = h.of.data[:size]
	case size > cur:
		grown := make([]byte, size)
		copy(grown, h.of.data)
		h.of.data = grown
	}
	h.of.dirty = true
	h.of.meta.Size = size
	h.of.meta.Mtime = a.clk.Now()
	return nil
}

// Fsync implements fsapi.Handle: the contents are flushed to the local disk
// cache (durability level 1 — survives a process or OS crash, not a disk
// failure).
func (h *handle) Fsync(ctx context.Context) error {
	a := h.of.agent
	if err := ctx.Err(); err != nil {
		return err
	}
	a.mu.Lock()
	if h.closed {
		a.mu.Unlock()
		return fsapi.ErrClosed
	}
	data := append([]byte(nil), h.of.data...)
	fileID := h.of.meta.FileID
	a.mu.Unlock()
	return a.diskCache.Put(fileID+"@wip", data)
}

// Stat implements fsapi.Handle.
func (h *handle) Stat(ctx context.Context) (fsapi.FileInfo, error) {
	a := h.of.agent
	if err := ctx.Err(); err != nil {
		return fsapi.FileInfo{}, err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if h.closed {
		return fsapi.FileInfo{}, fsapi.ErrClosed
	}
	info := h.of.meta.FileInfo()
	if h.of.data == nil && h.of.lazy != nil {
		info.Size = h.of.lazy.Size()
	} else {
		info.Size = int64(len(h.of.data))
	}
	return info, nil
}

// Close implements fsapi.Handle, following the close flow of Figure 4: the
// updated data is copied to the local disk and to the storage cloud, the
// metadata is pushed to the coordination service, and the lock is released.
// In blocking mode all of this happens before Close returns; in non-blocking
// and non-sharing modes the cloud synchronization happens in the background
// while mutual exclusion is preserved (the lock is only released after the
// upload completes).
func (h *handle) Close(ctx context.Context) error {
	a := h.of.agent
	a.mu.Lock()
	if h.closed {
		a.mu.Unlock()
		return fsapi.ErrClosed
	}
	h.closed = true
	of := h.of
	of.refs--
	lastRef := of.refs == 0
	wasDirty := of.dirty && h.flags.Writable()
	var data []byte
	var md *fsmeta.Metadata
	if wasDirty {
		data = append([]byte(nil), of.data...)
		md = of.meta
		of.dirty = false
	}
	shouldUnlock := lastRef && of.locked
	var lazyToClose storage.ReaderAtCloser
	if lastRef {
		delete(a.openFiles, of.path)
		lazyToClose, of.lazy = of.lazy, nil
	}
	a.mu.Unlock()

	if lazyToClose != nil {
		_ = lazyToClose.Close()
	}
	a.addStat(func(s *Stats) { s.FilesClosed++ })

	if !wasDirty {
		if shouldUnlock {
			return a.unlock(ctx, of.path)
		}
		return nil
	}

	// Record the new version and make it locally durable (level 1).
	hash := seccrypto.Hash(data)
	now := a.clk.Now()
	md.AddVersion(hash, int64(len(data)), now)
	key := cacheKey(md.FileID, hash)
	if err := a.diskCache.Put(key, data); err != nil {
		return err
	}
	a.memCache.Put(key, data)

	a.mu.Lock()
	a.bytesSinceGC += int64(len(data))
	a.mu.Unlock()
	defer a.maybeStartGC()

	if a.opts.Mode == Blocking {
		if err := a.syncToCloud(ctx, md, hash, data); err != nil {
			return err
		}
		if shouldUnlock {
			return a.unlock(ctx, of.path)
		}
		return nil
	}

	// Non-blocking / non-sharing: enqueue the upload; the uploader updates
	// the metadata and releases the lock when the data is in the cloud.
	// The payload itself is NOT carried by the queue — it was just made
	// durable in the disk cache, so the task pins that entry and the
	// uploader streams it back out of the cache. The queue's memory is
	// thereby bounded by its task structs, not by the dirty file sizes; the
	// in-memory copy rides along only in the edge case where the disk cache
	// could not retain the entry (a value larger than the whole cache).
	task := uploadTask{md: md.Clone(), hash: hash, size: int64(len(data)), unlockPath: ifThen(shouldUnlock, of.path)}
	if !a.diskCache.Pin(key) {
		task.fallback = data
	}
	a.addStat(func(s *Stats) { s.UploadsQueued++ })
	a.uploadCh <- task
	return nil
}

func ifThen(cond bool, v string) string {
	if cond {
		return v
	}
	return ""
}

// syncToCloud performs the cloud side of a close: write the data version to
// the storage backend (step w2) — streaming it chunk-by-chunk for large
// files when the backend supports it, so the encoded form is never fully
// resident — then anchor it by updating the metadata (step w3), flushing
// the PNS when the file is private.
func (a *Agent) syncToCloud(ctx context.Context, md *fsmeta.Metadata, hash string, data []byte) error {
	if a.shouldStream(int64(len(data))) {
		sw := a.opts.Storage.(storage.StreamWriter)
		if err := sw.WriteVersionFrom(ctx, md.FileID, hash, bytes.NewReader(data)); err != nil {
			return fmt.Errorf("core: uploading %q: %w", md.Path, err)
		}
		return a.finishSync(ctx, md, int64(len(data)), true)
	}
	if err := a.opts.Storage.WriteVersion(ctx, md.FileID, hash, data); err != nil {
		return fmt.Errorf("core: uploading %q: %w", md.Path, err)
	}
	return a.finishSync(ctx, md, int64(len(data)), false)
}

// shouldStream reports whether a payload of the given size goes through the
// backend's streaming face.
func (a *Agent) shouldStream(size int64) bool {
	if _, ok := a.opts.Storage.(storage.StreamWriter); !ok {
		return false
	}
	return a.opts.StreamThresholdBytes >= 0 && size > a.opts.StreamThresholdBytes
}

// finishSync records the stats and cost pressure of a completed version
// upload and anchors it in the metadata service.
func (a *Agent) finishSync(ctx context.Context, md *fsmeta.Metadata, size int64, streamed bool) error {
	a.addStat(func(s *Stats) { s.CloudWrites++; s.CloudBytesUp += size })
	// Meter the request-fee pressure of the new version for the GC trigger:
	// a streamed version creates one fee-bearing object per chunk per cloud.
	if vc, ok := a.opts.Storage.(storage.VersionCoster); ok {
		fp := vc.EstimateVersionFootprint(size, streamed)
		a.mu.Lock()
		a.objectsSinceGC += fp.Objects
		a.mu.Unlock()
	}
	if err := a.putMetadata(ctx, md); err != nil {
		return err
	}
	if !a.isShared(md) && a.pnsFor(md) {
		if err := a.flushPNS(ctx); err != nil {
			return err
		}
	}
	return nil
}

// pnsFor reports whether md's metadata is kept in the PNS.
func (a *Agent) pnsFor(md *fsmeta.Metadata) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pns != nil && a.pns.Get(md.Path) != nil
}

func (a *Agent) unlock(ctx context.Context, path string) error {
	if a.opts.Coordination == nil {
		return nil
	}
	if err := a.opts.Coordination.Unlock(ctx, path, a.opts.AgentID); err != nil {
		return fmt.Errorf("core: unlocking %q: %w", path, err)
	}
	return nil
}

// --- background uploader ---

// uploadTask is one queued background upload. It deliberately carries no
// payload: the dirty version is already durable in the disk cache (Close
// wrote and pinned it before enqueueing), and the worker streams it back
// out of the cache. A queue of thousands of pending uploads therefore costs
// metadata-sized memory, not the sum of the dirty file sizes. fallback
// holds the payload only when the disk cache could not retain the entry.
type uploadTask struct {
	md         *fsmeta.Metadata
	hash       string
	size       int64
	fallback   []byte
	unlockPath string
	// barrier, when non-nil, marks a synchronization point: the worker closes
	// it without doing any work (used by WaitForUploads).
	barrier chan struct{}
}

// uploadWorker drains the upload queue, preserving per-agent ordering (a
// single worker) so later versions of a file are never overtaken by earlier
// ones. Uploads run under the agent's lifetime context, not the context of
// the Close that queued them: a cancelled request must not lose a write the
// caller was told is locally durable. A forced Unmount cancels the lifetime
// context and aborts them.
func (a *Agent) uploadWorker() {
	defer a.uploadWG.Done()
	for task := range a.uploadCh {
		if task.barrier != nil {
			close(task.barrier)
			continue
		}
		err := a.uploadQueued(a.baseCtx, task)
		if err != nil {
			a.addStat(func(s *Stats) { s.UploadErrors++ })
		}
		if task.unlockPath != "" {
			_ = a.unlock(a.baseCtx, task.unlockPath)
		}
		a.maybeStartGC()
	}
}

// uploadQueued performs one queued background upload, sourcing the payload
// from the disk cache it was spilled to. Large versions are streamed from
// the cache file straight into the backend's streaming face, so neither the
// queue nor the upload ever holds the whole (let alone the encoded) value
// in memory; small ones take the whole-object path. The pinned cache entry
// is released once the upload attempt finishes.
func (a *Agent) uploadQueued(ctx context.Context, task uploadTask) error {
	key := cacheKey(task.md.FileID, task.hash)
	if task.fallback != nil {
		return a.syncToCloud(ctx, task.md, task.hash, task.fallback)
	}
	defer a.diskCache.Unpin(key)
	if a.shouldStream(task.size) {
		if f, size, ok := a.diskCache.Open(key); ok {
			defer f.Close()
			sw := a.opts.Storage.(storage.StreamWriter)
			if err := sw.WriteVersionFrom(ctx, task.md.FileID, task.hash, f); err != nil {
				return fmt.Errorf("core: uploading %q: %w", task.md.Path, err)
			}
			return a.finishSync(ctx, task.md, size, true)
		}
	}
	data, ok := a.diskCache.Get(key)
	if !ok {
		// The pinned entry is gone (a crash-recovery edge or an explicit
		// cache clear); the memory cache may still hold the version.
		if data, ok = a.memCache.Get(key); !ok {
			return fmt.Errorf("core: queued version of %q (hash %s) lost from the local caches", task.md.Path, task.hash)
		}
	}
	return a.syncToCloud(ctx, task.md, task.hash, data)
}

// WaitForUploads blocks until every queued upload at the time of the call
// has been processed, or until ctx is done. Experiments and tests use it to
// measure the asynchronous path deterministically.
func (a *Agent) WaitForUploads(ctx context.Context) error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil // Unmount already drained the queue
	}
	a.mu.Unlock()
	// A barrier task is processed only after everything queued before it.
	done := make(chan struct{})
	a.uploadCh <- uploadTask{barrier: done}
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("core: waiting for queued uploads: %w", ctx.Err())
	}
}
