package core

import (
	"context"

	"scfs/internal/storage"
)

// CostReport is the mount's cloud-spend snapshot: what the files owned by
// this principal currently occupy across the clouds and what that costs in
// dollars under the backend's price table. Everything version-granular is
// an estimate derived from the same cost model the garbage collector ranks
// by (storage.VersionCoster); backends without a coster report the byte
// axes only.
type CostReport struct {
	// Files is how many live file records were examined (directories and
	// other users' files are skipped).
	Files int
	// Versions counts the stored versions across those files — the current
	// one plus every older version the garbage collector has not yet
	// reclaimed, plus the remains of deleted files.
	Versions int
	// LogicalBytes is the plaintext the versions hold.
	LogicalBytes int64
	// CloudBytes is what those versions occupy across the charged clouds
	// (erasure-coded shards on the write quorum for DepSky-CA, n replicas
	// for DepSky-A, the raw size on a single cloud).
	CloudBytes int64
	// CloudObjects is how many cloud objects hold them (chunked versions
	// occupy one object per chunk per charged cloud).
	CloudObjects int64
	// StorageDollarsPerMonth is the recurring spend of keeping everything.
	StorageDollarsPerMonth float64
	// ReadOnceDollars estimates reading every file's current version once
	// (GET fees + egress at the clouds a read contacts).
	ReadOnceDollars float64
	// ReclaimDollars estimates deleting every stored version (the request
	// fees a full reclamation would spend).
	ReclaimDollars float64
}

// CostReport walks the metadata of the files owned by this agent's user and
// prices their cloud footprint. It issues the same batched metadata listing
// a garbage-collection scan does (no payload bytes move) and is safe to
// call on a live mount.
func (a *Agent) CostReport(ctx context.Context) (CostReport, error) {
	var report CostReport
	entries, err := a.listSubtree(ctx, "/")
	if err != nil {
		return report, err
	}
	coster, _ := a.opts.Storage.(storage.VersionCoster)
	for _, md := range entries {
		if md.Owner != a.opts.User || md.IsDir() {
			continue
		}
		report.Files++
		for _, v := range md.Versions {
			report.Versions++
			report.LogicalBytes += v.Size
			if coster == nil {
				continue
			}
			fp := coster.EstimateVersionFootprint(v.Size, a.shouldStream(v.Size))
			report.CloudBytes += fp.Bytes
			report.CloudObjects += fp.Objects
			report.StorageDollarsPerMonth += fp.Dollars.StoragePerMonth
			report.ReclaimDollars += fp.Dollars.DeleteOnce
		}
		// One read per live file, priced once off the current size (a file
		// may hold several version records with the current hash — writing
		// identical content twice appends two — so pricing inside the
		// version loop would double-count the read).
		if !md.Deleted && coster != nil {
			fp := coster.EstimateVersionFootprint(md.Size, a.shouldStream(md.Size))
			report.ReadOnceDollars += fp.Dollars.ReadOnce
		}
	}
	return report, nil
}
