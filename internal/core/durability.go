package core

import "time"

// DurabilityLevel enumerates the data-durability levels of Table 1: where a
// write lives after each kind of system call and what failures it survives.
type DurabilityLevel int

const (
	// DurabilityMemory (level 0): the data is only in the agent's main
	// memory cache — a write system call.
	DurabilityMemory DurabilityLevel = iota
	// DurabilityLocalDisk (level 1): the data reached the local disk —
	// fsync.
	DurabilityLocalDisk
	// DurabilityCloud (level 2): the data reached a single cloud provider —
	// close with a single-cloud backend.
	DurabilityCloud
	// DurabilityCloudOfClouds (level 3): the data is spread over a quorum of
	// clouds and survives f provider failures — close with the CoC backend.
	DurabilityCloudOfClouds
)

// DurabilityInfo describes one row of Table 1.
type DurabilityInfo struct {
	Level         DurabilityLevel
	Location      string
	LatencyClass  string
	FaultTolerated string
	SystemCall    string
	// TypicalLatency is the order-of-magnitude latency of reaching the level.
	TypicalLatency time.Duration
}

// DurabilityTable returns the durability model of SCFS (Table 1 of the
// paper). usesCoC selects whether close reaches level 2 or level 3.
func DurabilityTable(usesCoC bool) []DurabilityInfo {
	rows := []DurabilityInfo{
		{Level: DurabilityMemory, Location: "main memory", LatencyClass: "microseconds", FaultTolerated: "none", SystemCall: "write", TypicalLatency: 5 * time.Microsecond},
		{Level: DurabilityLocalDisk, Location: "local disk", LatencyClass: "milliseconds", FaultTolerated: "process/OS crash", SystemCall: "fsync", TypicalLatency: 5 * time.Millisecond},
	}
	if usesCoC {
		rows = append(rows, DurabilityInfo{Level: DurabilityCloudOfClouds, Location: "cloud-of-clouds", LatencyClass: "seconds", FaultTolerated: "f cloud providers", SystemCall: "close", TypicalLatency: 2 * time.Second})
	} else {
		rows = append(rows, DurabilityInfo{Level: DurabilityCloud, Location: "cloud", LatencyClass: "seconds", FaultTolerated: "local disk failure", SystemCall: "close", TypicalLatency: time.Second})
	}
	return rows
}

// CloseDurability reports the durability level a completed close call
// provides under the agent's mode and backend. In non-blocking and
// non-sharing modes close only guarantees level 1 at return time — the cloud
// level is reached asynchronously.
func (a *Agent) CloseDurability(usesCoC bool) DurabilityLevel {
	if a.opts.Mode != Blocking {
		return DurabilityLocalDisk
	}
	if usesCoC {
		return DurabilityCloudOfClouds
	}
	return DurabilityCloud
}
