package cloudsim

import (
	"context"

	"scfs/internal/cloud"
)

// client is the per-account view of a Provider; it implements
// cloud.ObjectStore and charges the simulated network latency of every call.
// The simulated latency is interruptible: when the caller's context is
// cancelled mid-request, the call returns ctx.Err() immediately, and the
// request behaves like a message lost on the wire — a cancelled Put never
// reaches the provider, a cancelled Get transfers (and bills) no payload.
type client struct {
	p       *Provider
	account string
}

var _ cloud.ObjectStore = (*client)(nil)

func (c *client) Provider() string { return c.p.Name() }
func (c *client) Account() string  { return c.account }

func (c *client) Put(ctx context.Context, name string, data []byte) error {
	if err := c.p.simulateLatency(ctx, len(data), 0); err != nil {
		return err
	}
	return c.p.put(c.account, name, data)
}

func (c *client) Get(ctx context.Context, name string) ([]byte, error) {
	// The payload size is only known after the lookup; approximate the
	// transfer cost by doing the lookup first and then sleeping for the
	// download time. The RTT is charged up front. A cancellation during the
	// transfer sleep drops the payload: the provider already billed the
	// outbound bytes (the data left the data centre), but the caller gets
	// only ctx.Err(), never partial data.
	if err := c.p.simulateLatency(ctx, 0, 0); err != nil {
		return nil, err
	}
	data, err := c.p.get(c.account, name)
	if err != nil {
		return nil, err
	}
	if err := c.p.simulateTransfer(ctx, 0, len(data)); err != nil {
		return nil, err
	}
	return data, nil
}

func (c *client) Head(ctx context.Context, name string) (cloud.ObjectInfo, error) {
	if err := c.p.simulateLatency(ctx, 0, 0); err != nil {
		return cloud.ObjectInfo{}, err
	}
	return c.p.head(c.account, name)
}

func (c *client) Delete(ctx context.Context, name string) error {
	if err := c.p.simulateLatency(ctx, 0, 0); err != nil {
		return err
	}
	return c.p.delete(c.account, name)
}

func (c *client) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	if err := c.p.simulateLatency(ctx, 0, 0); err != nil {
		return nil, err
	}
	return c.p.list(c.account, prefix)
}

func (c *client) SetACL(ctx context.Context, name string, grants []cloud.Grant) error {
	if err := c.p.simulateLatency(ctx, 0, 0); err != nil {
		return err
	}
	return c.p.setACL(c.account, name, grants)
}

func (c *client) GetACL(ctx context.Context, name string) ([]cloud.Grant, error) {
	if err := c.p.simulateLatency(ctx, 0, 0); err != nil {
		return nil, err
	}
	return c.p.getACL(c.account, name)
}
