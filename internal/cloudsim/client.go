package cloudsim

import "scfs/internal/cloud"

// client is the per-account view of a Provider; it implements
// cloud.ObjectStore and charges the simulated network latency of every call.
type client struct {
	p       *Provider
	account string
}

var _ cloud.ObjectStore = (*client)(nil)

func (c *client) Provider() string { return c.p.Name() }
func (c *client) Account() string  { return c.account }

func (c *client) Put(name string, data []byte) error {
	c.p.simulateLatency(len(data), 0)
	return c.p.put(c.account, name, data)
}

func (c *client) Get(name string) ([]byte, error) {
	// The payload size is only known after the lookup; approximate the
	// transfer cost by doing the lookup first and then sleeping for the
	// download time. The RTT is charged up front.
	c.p.simulateLatency(0, 0)
	data, err := c.p.get(c.account, name)
	if err != nil {
		return nil, err
	}
	c.p.simulateTransfer(0, len(data))
	return data, nil
}

func (c *client) Head(name string) (cloud.ObjectInfo, error) {
	c.p.simulateLatency(0, 0)
	return c.p.head(c.account, name)
}

func (c *client) Delete(name string) error {
	c.p.simulateLatency(0, 0)
	return c.p.delete(c.account, name)
}

func (c *client) List(prefix string) ([]cloud.ObjectInfo, error) {
	c.p.simulateLatency(0, 0)
	return c.p.list(c.account, prefix)
}

func (c *client) SetACL(name string, grants []cloud.Grant) error {
	c.p.simulateLatency(0, 0)
	return c.p.setACL(c.account, name, grants)
}

func (c *client) GetACL(name string) ([]cloud.Grant, error) {
	c.p.simulateLatency(0, 0)
	return c.p.getACL(c.account, name)
}
