package cloudsim

import (
	"context"

	"scfs/internal/cloud"
)

// client is the per-account view of a Provider; it implements
// cloud.ObjectStore and charges the simulated network latency of every call.
// The simulated latency is interruptible: when the caller's context is
// cancelled mid-request, the call returns ctx.Err() immediately, and the
// request behaves like a message lost on the wire — a cancelled Put never
// reaches the provider, a cancelled Get transfers (and bills) no payload.
//
// Each request's fate against the fault schedule is settled once, at entry
// (beginRequest), and honoured coherently across the latency simulation and
// the operation itself: a gray-slow request is slow on the wire, a hung
// request parks after its network time, an unavailable one errors at the
// provider.
type client struct {
	p       *Provider
	account string
}

var (
	_ cloud.ObjectStore = (*client)(nil)
	_ cloud.Meter       = (*client)(nil)
)

func (c *client) Provider() string { return c.p.Name() }
func (c *client) Account() string  { return c.account }

// Usage implements cloud.Meter: the provider-metered consumption of this
// client's account.
func (c *client) Usage() cloud.Usage { return c.p.Usage(c.account) }

func (c *client) Put(ctx context.Context, name string, data []byte) error {
	d := c.p.beginRequest(OpPut)
	if err := c.p.simulateLatency(ctx, len(data), 0, d); err != nil {
		return err
	}
	if d.mode == FaultHang {
		return c.p.hang(ctx)
	}
	return c.p.put(c.account, name, data, d)
}

func (c *client) Get(ctx context.Context, name string) ([]byte, error) {
	// The payload size is only known after the lookup; approximate the
	// transfer cost by doing the lookup first and then sleeping for the
	// download time. The RTT is charged up front. A cancellation during the
	// transfer sleep drops the payload: the provider already billed the
	// outbound bytes (the data left the data centre), but the caller gets
	// only ctx.Err(), never partial data.
	d := c.p.beginRequest(OpGet)
	if err := c.p.simulateLatency(ctx, 0, 0, d); err != nil {
		return nil, err
	}
	if d.mode == FaultHang {
		return nil, c.p.hang(ctx)
	}
	data, err := c.p.get(c.account, name, d)
	if err != nil {
		return nil, err
	}
	if err := c.p.simulateTransfer(ctx, 0, len(data), d); err != nil {
		return nil, err
	}
	return data, nil
}

func (c *client) Head(ctx context.Context, name string) (cloud.ObjectInfo, error) {
	d := c.p.beginRequest(OpHead)
	if err := c.p.simulateLatency(ctx, 0, 0, d); err != nil {
		return cloud.ObjectInfo{}, err
	}
	if d.mode == FaultHang {
		return cloud.ObjectInfo{}, c.p.hang(ctx)
	}
	return c.p.head(c.account, name, d)
}

func (c *client) Delete(ctx context.Context, name string) error {
	d := c.p.beginRequest(OpDelete)
	if err := c.p.simulateLatency(ctx, 0, 0, d); err != nil {
		return err
	}
	if d.mode == FaultHang {
		return c.p.hang(ctx)
	}
	return c.p.delete(c.account, name, d)
}

func (c *client) List(ctx context.Context, prefix string) ([]cloud.ObjectInfo, error) {
	d := c.p.beginRequest(OpList)
	if err := c.p.simulateLatency(ctx, 0, 0, d); err != nil {
		return nil, err
	}
	if d.mode == FaultHang {
		return nil, c.p.hang(ctx)
	}
	return c.p.list(c.account, prefix, d)
}

func (c *client) SetACL(ctx context.Context, name string, grants []cloud.Grant) error {
	d := c.p.beginRequest(OpACL)
	if err := c.p.simulateLatency(ctx, 0, 0, d); err != nil {
		return err
	}
	if d.mode == FaultHang {
		return c.p.hang(ctx)
	}
	return c.p.setACL(c.account, name, grants, d)
}

func (c *client) GetACL(ctx context.Context, name string) ([]cloud.Grant, error) {
	d := c.p.beginRequest(OpACL)
	if err := c.p.simulateLatency(ctx, 0, 0, d); err != nil {
		return nil, err
	}
	if d.mode == FaultHang {
		return nil, c.p.hang(ctx)
	}
	return c.p.getACL(c.account, name, d)
}
