// Package cloudsim implements simulated cloud object-storage providers with
// the characteristics the SCFS evaluation depends on: realistic access
// latencies, eventual consistency, per-object ACLs tied to provider accounts,
// independent failures (outages, data corruption, lost writes) and usage
// metering compatible with the providers' charging model (free inbound
// traffic, paid outbound traffic, per-request fees, per-GB-month storage).
//
// A Provider is the storage service itself; Client (see client.go) is the
// per-account view handed to SCFS agents, DepSky, and the baselines.
package cloudsim

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"scfs/internal/clock"
	"scfs/internal/cloud"
)

// LatencyProfile models the network behaviour of one provider as observed
// from the client site (the paper's clients are in Portugal; providers in the
// US and Europe, with RTTs of tens to ~100 ms).
type LatencyProfile struct {
	// RTT is the fixed round-trip component paid by every request.
	RTT time.Duration
	// UploadBytesPerSec and DownloadBytesPerSec model throughput.
	UploadBytesPerSec   float64
	DownloadBytesPerSec float64
	// JitterFraction adds ±fraction*latency uniform jitter.
	JitterFraction float64
}

// requestLatency computes the simulated duration for a request transferring
// upBytes to the cloud and downBytes back.
func (p LatencyProfile) requestLatency(upBytes, downBytes int, rng *rand.Rand) time.Duration {
	d := p.RTT
	if p.UploadBytesPerSec > 0 && upBytes > 0 {
		d += time.Duration(float64(upBytes) / p.UploadBytesPerSec * float64(time.Second))
	}
	if p.DownloadBytesPerSec > 0 && downBytes > 0 {
		d += time.Duration(float64(downBytes) / p.DownloadBytesPerSec * float64(time.Second))
	}
	if p.JitterFraction > 0 && rng != nil {
		jitter := (rng.Float64()*2 - 1) * p.JitterFraction
		d = time.Duration(float64(d) * (1 + jitter))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// FaultMode selects how a struck request misbehaves. The CoC backend must
// tolerate f providers in any of these modes. Which requests are struck is
// decided by the fault schedule (see FaultSpec in faults.go): SetFault
// strikes everything, SetFaults composes probabilistic, time-windowed and
// counter-windowed predicates.
type FaultMode int

const (
	// FaultNone is normal operation.
	FaultNone FaultMode = iota
	// FaultUnavailable fails struck requests with cloud.ErrUnavailable.
	FaultUnavailable
	// FaultCorrupt makes struck reads return silently corrupted payloads.
	FaultCorrupt
	// FaultLoseWrites acknowledges struck writes but drops the data.
	FaultLoseWrites
	// FaultSlow inflates the latency of struck requests (default 10x, see
	// FaultSpec.LatencyFactor) without any error: a gray, slow-but-correct
	// provider.
	FaultSlow
	// FaultThrottle fails struck requests with cloud.ErrThrottled (the
	// provider's 429/slow-down answer): transient, and the classification
	// the retry/backoff layer exists for.
	FaultThrottle
	// FaultHang accepts the struck request and then never answers: the
	// connection stays open until the caller's context cancels it. The
	// nastiest gray failure — no error, no progress — which only timeouts,
	// hedging and quorum cancellation can mask.
	FaultHang
)

// Options configures a Provider.
type Options struct {
	// Name identifies the provider (e.g. "amazon-s3").
	Name string
	// Latency is the network model. Zero value means no simulated latency.
	Latency LatencyProfile
	// LatencyScale multiplies every simulated delay; 0 means 1.0. Tests use
	// 0 latency or tiny scales; `scfs-bench -scale 1` reproduces the paper's
	// absolute magnitudes.
	LatencyScale float64
	// ConsistencyWindow is how long a freshly written object version may
	// remain invisible to readers (eventual consistency). Zero gives
	// read-after-write consistency.
	ConsistencyWindow time.Duration
	// Clock defaults to the real clock.
	Clock clock.Clock
	// Seed seeds the provider's private RNG (jitter, consistency windows).
	Seed int64
}

// storedVersion is one write of an object; reads see the newest visible one.
type storedVersion struct {
	data      []byte
	visibleAt time.Time
	modTime   time.Time
}

type object struct {
	name     string
	owner    string
	grants   map[string]cloud.Permission
	versions []storedVersion // append-only; oldest first
	deleted  bool
}

// newestVisible returns the latest version visible at time now, or nil.
func (o *object) newestVisible(now time.Time) *storedVersion {
	for i := len(o.versions) - 1; i >= 0; i-- {
		if !o.versions[i].visibleAt.After(now) {
			return &o.versions[i]
		}
	}
	return nil
}

// accountState tracks metering for one account.
type accountState struct {
	usage       cloud.Usage
	lastMeterAt time.Time
}

// Provider is a simulated cloud object-storage service.
type Provider struct {
	opts Options
	clk  clock.Clock

	mu       sync.Mutex
	rng      *rand.Rand
	objects  map[string]*object
	accounts map[string]*accountState

	// faults is the active fault schedule (see faults.go); staticFault
	// remembers the last wholesale SetFault mode for the legacy getter.
	faults      []*faultEntry
	staticFault FaultMode

	// Counters for observability in tests/experiments.
	totalRequests int64
}

// NewProvider creates a simulated provider.
func NewProvider(opts Options) *Provider {
	if opts.Clock == nil {
		opts.Clock = clock.Real()
	}
	if opts.LatencyScale == 0 {
		opts.LatencyScale = 1.0
	}
	if opts.Name == "" {
		opts.Name = "cloud"
	}
	return &Provider{
		opts:     opts,
		clk:      opts.Clock,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		objects:  make(map[string]*object),
		accounts: make(map[string]*accountState),
	}
}

// Name returns the provider name.
func (p *Provider) Name() string { return p.opts.Name }

// CreateAccount registers an account and returns its canonical identifier,
// unique within the provider (mirrors the per-provider canonical user IDs
// SCFS has to map between, §2.6).
func (p *Provider) CreateAccount(user string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := fmt.Sprintf("%s:%s", p.opts.Name, user)
	if _, ok := p.accounts[id]; !ok {
		p.accounts[id] = &accountState{lastMeterAt: p.clk.Now()}
	}
	return id
}

// Client returns the ObjectStore view for a canonical account identifier
// previously returned by CreateAccount.
func (p *Provider) Client(canonicalID string) (cloud.ObjectStore, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.accounts[canonicalID]; !ok {
		return nil, fmt.Errorf("cloudsim: unknown account %q", canonicalID)
	}
	return &client{p: p, account: canonicalID}, nil
}

// MustClient is Client but panics on error; convenient in tests and examples
// where the account was just created.
func (p *Provider) MustClient(canonicalID string) cloud.ObjectStore {
	c, err := p.Client(canonicalID)
	if err != nil {
		panic(err)
	}
	return c
}

// Usage returns a snapshot of the metered usage for an account, with the
// storage byte-hours integrated up to now.
func (p *Provider) Usage(canonicalID string) cloud.Usage {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.accounts[canonicalID]
	if !ok {
		return cloud.Usage{}
	}
	p.meterStorageLocked(st)
	return st.usage
}

// TotalRequests returns the number of API requests served (all accounts).
func (p *Provider) TotalRequests() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.totalRequests
}

// ObjectCount returns the number of live (non-deleted) objects stored.
func (p *Provider) ObjectCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, o := range p.objects {
		if !o.deleted && len(o.versions) > 0 {
			n++
		}
	}
	return n
}

// meterStorageLocked integrates byte-hours since the last metering point.
func (p *Provider) meterStorageLocked(st *accountState) {
	now := p.clk.Now()
	elapsed := now.Sub(st.lastMeterAt)
	if elapsed > 0 {
		st.usage.ByteHours += float64(st.usage.StoredBytes) * elapsed.Hours()
	}
	st.lastMeterAt = now
}

// simulateLatency sleeps for the duration of a request outside the lock,
// returning early with ctx.Err() if the caller cancels mid-flight. The
// request's fault decision inflates the sleep for gray-slow requests.
func (p *Provider) simulateLatency(ctx context.Context, upBytes, downBytes int, d decision) error {
	p.mu.Lock()
	base := p.opts.Latency.requestLatency(upBytes, downBytes, p.rng)
	if d.latencyFactor > 0 {
		base = time.Duration(float64(base) * d.latencyFactor)
	}
	scaled := time.Duration(float64(base) * p.opts.LatencyScale)
	p.mu.Unlock()
	return clock.SleepCtx(ctx, p.clk, scaled)
}

// simulateTransfer sleeps only for the payload-transfer component of a
// request (no RTT); used when the payload size is only known after the
// metadata lookup has already been charged.
func (p *Provider) simulateTransfer(ctx context.Context, upBytes, downBytes int, d decision) error {
	p.mu.Lock()
	prof := p.opts.Latency
	prof.RTT = 0
	base := prof.requestLatency(upBytes, downBytes, p.rng)
	if d.latencyFactor > 0 {
		base = time.Duration(float64(base) * d.latencyFactor)
	}
	scaled := time.Duration(float64(base) * p.opts.LatencyScale)
	p.mu.Unlock()
	return clock.SleepCtx(ctx, p.clk, scaled)
}

// hang parks a FaultHang request until the caller gives up: the provider
// accepted the connection and will never answer. The request is counted
// (the bytes did reach the provider) but the operation never executes.
func (p *Provider) hang(ctx context.Context) error {
	p.mu.Lock()
	p.totalRequests++
	p.mu.Unlock()
	<-ctx.Done()
	return ctx.Err()
}

// faultErr wraps a sentinel with provider context, preserving errors.Is
// classification through the chain.
func (p *Provider) faultErr(sentinel error) error {
	return fmt.Errorf("%s: %w", p.opts.Name, sentinel)
}

// opErr translates an error-mode decision into the wrapped sentinel the
// struck request fails with, or nil when the mode corrupts/drops/delays
// instead of erroring.
func (p *Provider) opErr(d decision) error {
	switch d.mode {
	case FaultUnavailable:
		return p.faultErr(cloud.ErrUnavailable)
	case FaultThrottle:
		return p.faultErr(cloud.ErrThrottled)
	default:
		return nil
	}
}

// visibility returns when a write performed now becomes visible.
func (p *Provider) visibilityLocked(now time.Time) time.Time {
	if p.opts.ConsistencyWindow <= 0 {
		return now
	}
	// Uniform in [0, window]: some writes are visible immediately, others
	// only after the full window, as observed on eventually consistent
	// stores.
	w := time.Duration(p.rng.Int63n(int64(p.opts.ConsistencyWindow) + 1))
	w = time.Duration(float64(w) * p.opts.LatencyScale)
	return now.Add(w)
}

func (p *Provider) permFor(o *object, account string) cloud.Permission {
	if o.owner == account {
		return cloud.PermReadWrite
	}
	if perm, ok := o.grants[account]; ok {
		return perm
	}
	return cloud.PermNone
}

// --- operations (called by client with latency already simulated) ---

func (p *Provider) put(account, name string, data []byte, d decision) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.totalRequests++
	st := p.accounts[account]
	st.usage.PutRequests++
	st.usage.BytesIn += int64(len(data))
	if err := p.opErr(d); err != nil {
		return err
	}
	o, ok := p.objects[name]
	if !ok || (o.deleted && len(o.versions) == 0) {
		o = &object{name: name, owner: account, grants: make(map[string]cloud.Permission)}
		p.objects[name] = o
	}
	if !p.permFor(o, account).CanWrite() {
		return cloud.ErrAccessDenied
	}
	if d.mode == FaultLoseWrites {
		// Acknowledge but drop: a Byzantine provider.
		return nil
	}
	now := p.clk.Now()
	// Update the owner's storage metering (the object owner pays, matching
	// the pay-per-ownership principle).
	ownerSt := p.accounts[o.owner]
	if ownerSt != nil {
		p.meterStorageLocked(ownerSt)
		if cur := o.newestVisible(now.Add(p.opts.ConsistencyWindow + time.Hour)); cur != nil {
			ownerSt.usage.StoredBytes -= int64(len(cur.data))
		}
		ownerSt.usage.StoredBytes += int64(len(data))
	}
	o.deleted = false
	o.versions = append(o.versions, storedVersion{
		data:      append([]byte(nil), data...),
		visibleAt: p.visibilityLocked(now),
		modTime:   now,
	})
	// Bound version history to avoid unbounded growth in long simulations.
	if len(o.versions) > 8 {
		o.versions = append([]storedVersion(nil), o.versions[len(o.versions)-8:]...)
	}
	return nil
}

func (p *Provider) get(account, name string, d decision) ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.totalRequests++
	st := p.accounts[account]
	st.usage.GetRequests++
	if err := p.opErr(d); err != nil {
		return nil, err
	}
	o, ok := p.objects[name]
	if !ok || o.deleted {
		return nil, cloud.ErrNotFound
	}
	if !p.permFor(o, account).CanRead() {
		return nil, cloud.ErrAccessDenied
	}
	v := o.newestVisible(p.clk.Now())
	if v == nil {
		return nil, cloud.ErrNotFound
	}
	data := append([]byte(nil), v.data...)
	if d.mode == FaultCorrupt && len(data) > 0 {
		// Flip bytes silently; integrity must be caught by hashes upstream.
		for i := 0; i < len(data); i += 97 {
			data[i] ^= 0x5A
		}
	}
	st.usage.BytesOut += int64(len(data))
	return data, nil
}

func (p *Provider) head(account, name string, d decision) (cloud.ObjectInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.totalRequests++
	st := p.accounts[account]
	st.usage.GetRequests++
	if err := p.opErr(d); err != nil {
		return cloud.ObjectInfo{}, err
	}
	o, ok := p.objects[name]
	if !ok || o.deleted {
		return cloud.ObjectInfo{}, cloud.ErrNotFound
	}
	if !p.permFor(o, account).CanRead() {
		return cloud.ObjectInfo{}, cloud.ErrAccessDenied
	}
	v := o.newestVisible(p.clk.Now())
	if v == nil {
		return cloud.ObjectInfo{}, cloud.ErrNotFound
	}
	return cloud.ObjectInfo{Name: o.name, Size: int64(len(v.data)), Owner: o.owner, ModTime: v.modTime}, nil
}

func (p *Provider) delete(account, name string, d decision) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.totalRequests++
	st := p.accounts[account]
	st.usage.DeleteRequests++
	if err := p.opErr(d); err != nil {
		return err
	}
	o, ok := p.objects[name]
	if !ok || o.deleted {
		return nil // deleting a non-existent object is a no-op, like S3
	}
	if !p.permFor(o, account).CanWrite() {
		return cloud.ErrAccessDenied
	}
	ownerSt := p.accounts[o.owner]
	if ownerSt != nil {
		p.meterStorageLocked(ownerSt)
		if cur := o.newestVisible(p.clk.Now().Add(p.opts.ConsistencyWindow + time.Hour)); cur != nil {
			ownerSt.usage.StoredBytes -= int64(len(cur.data))
			if ownerSt.usage.StoredBytes < 0 {
				ownerSt.usage.StoredBytes = 0
			}
		}
	}
	o.deleted = true
	o.versions = nil
	return nil
}

func (p *Provider) list(account, prefix string, d decision) ([]cloud.ObjectInfo, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.totalRequests++
	st := p.accounts[account]
	st.usage.ListRequests++
	if err := p.opErr(d); err != nil {
		return nil, err
	}
	now := p.clk.Now()
	var out []cloud.ObjectInfo
	for _, o := range p.objects {
		if o.deleted || !strings.HasPrefix(o.name, prefix) {
			continue
		}
		if !p.permFor(o, account).CanRead() {
			continue
		}
		v := o.newestVisible(now)
		if v == nil {
			continue
		}
		out = append(out, cloud.ObjectInfo{Name: o.name, Size: int64(len(v.data)), Owner: o.owner, ModTime: v.modTime})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (p *Provider) setACL(account, name string, grants []cloud.Grant, d decision) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.totalRequests++
	st := p.accounts[account]
	st.usage.PutRequests++
	if err := p.opErr(d); err != nil {
		return err
	}
	o, ok := p.objects[name]
	if !ok || o.deleted {
		return cloud.ErrNotFound
	}
	if o.owner != account {
		return cloud.ErrAccessDenied
	}
	o.grants = make(map[string]cloud.Permission, len(grants))
	for _, g := range grants {
		if g.Perm == cloud.PermNone {
			continue
		}
		o.grants[g.Grantee] = g.Perm
	}
	return nil
}

func (p *Provider) getACL(account, name string, d decision) ([]cloud.Grant, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.totalRequests++
	st := p.accounts[account]
	st.usage.GetRequests++
	if err := p.opErr(d); err != nil {
		return nil, err
	}
	o, ok := p.objects[name]
	if !ok || o.deleted {
		return nil, cloud.ErrNotFound
	}
	if o.owner != account {
		return nil, cloud.ErrAccessDenied
	}
	out := make([]cloud.Grant, 0, len(o.grants))
	for grantee, perm := range o.grants {
		out = append(out, cloud.Grant{Grantee: grantee, Perm: perm})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Grantee < out[j].Grantee })
	return out, nil
}
