package cloudsim

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"scfs/internal/clock"
	"scfs/internal/cloud"
)

// newTestProvider returns a zero-latency, strongly consistent provider.
var bg = context.Background()

func newTestProvider() *Provider {
	return NewProvider(Options{Name: "test"})
}

func TestPutGetRoundTrip(t *testing.T) {
	p := newTestProvider()
	alice := p.CreateAccount("alice")
	c := p.MustClient(alice)
	data := []byte("hello cloud")
	if err := c.Put(bg, "dir/file1", data); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(bg, "dir/file1")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("Get = %q, want %q", got, data)
	}
}

func TestGetMissingObject(t *testing.T) {
	p := newTestProvider()
	c := p.MustClient(p.CreateAccount("alice"))
	if _, err := c.Get(bg, "nope"); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := c.Head(bg, "nope"); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("Head err = %v, want ErrNotFound", err)
	}
}

func TestOverwriteReturnsLatest(t *testing.T) {
	p := newTestProvider()
	c := p.MustClient(p.CreateAccount("alice"))
	if err := c.Put(bg, "obj", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := c.Put(bg, "obj", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(bg, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("Get = %q, want v2", got)
	}
}

func TestDeleteRemovesAndIsIdempotent(t *testing.T) {
	p := newTestProvider()
	c := p.MustClient(p.CreateAccount("alice"))
	if err := c.Put(bg, "obj", []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete(bg, "obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(bg, "obj"); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("after delete, err = %v, want ErrNotFound", err)
	}
	if err := c.Delete(bg, "obj"); err != nil {
		t.Fatalf("second delete should be a no-op, got %v", err)
	}
	if err := c.Delete(bg, "never-existed"); err != nil {
		t.Fatalf("deleting non-existent object should be a no-op, got %v", err)
	}
}

func TestHeadReportsSizeAndOwner(t *testing.T) {
	p := newTestProvider()
	alice := p.CreateAccount("alice")
	c := p.MustClient(alice)
	if err := c.Put(bg, "obj", make([]byte, 1234)); err != nil {
		t.Fatal(err)
	}
	info, err := c.Head(bg, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 1234 || info.Owner != alice || info.Name != "obj" {
		t.Fatalf("unexpected Head info: %+v", info)
	}
}

func TestListPrefixAndOrdering(t *testing.T) {
	p := newTestProvider()
	c := p.MustClient(p.CreateAccount("alice"))
	for _, name := range []string{"b/2", "a/1", "b/1", "c"} {
		if err := c.Put(bg, name, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.List(bg, "b/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "b/1" || got[1].Name != "b/2" {
		t.Fatalf("List(b/) = %+v", got)
	}
	all, err := c.List(bg, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("List(\"\") returned %d objects, want 4", len(all))
	}
}

func TestACLEnforcement(t *testing.T) {
	p := newTestProvider()
	alice := p.CreateAccount("alice")
	bob := p.CreateAccount("bob")
	ca := p.MustClient(alice)
	cb := p.MustClient(bob)

	if err := ca.Put(bg, "shared", []byte("secret")); err != nil {
		t.Fatal(err)
	}
	// Bob has no access yet.
	if _, err := cb.Get(bg, "shared"); !errors.Is(err, cloud.ErrAccessDenied) {
		t.Fatalf("bob Get err = %v, want ErrAccessDenied", err)
	}
	if err := cb.Put(bg, "shared", []byte("overwrite")); !errors.Is(err, cloud.ErrAccessDenied) {
		t.Fatalf("bob Put err = %v, want ErrAccessDenied", err)
	}
	// Bob must not see the object in listings either.
	l, err := cb.List(bg, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(l) != 0 {
		t.Fatalf("bob should not list alice's private objects, got %+v", l)
	}
	// Grant read.
	if err := ca.SetACL(bg, "shared", []cloud.Grant{{Grantee: bob, Perm: cloud.PermRead}}); err != nil {
		t.Fatal(err)
	}
	got, err := cb.Get(bg, "shared")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "secret" {
		t.Fatalf("bob read %q", got)
	}
	// Read grant does not allow writes.
	if err := cb.Put(bg, "shared", []byte("x")); !errors.Is(err, cloud.ErrAccessDenied) {
		t.Fatalf("bob write with read grant err = %v, want ErrAccessDenied", err)
	}
	// Upgrade to read-write.
	if err := ca.SetACL(bg, "shared", []cloud.Grant{{Grantee: bob, Perm: cloud.PermReadWrite}}); err != nil {
		t.Fatal(err)
	}
	if err := cb.Put(bg, "shared", []byte("bob was here")); err != nil {
		t.Fatal(err)
	}
	// Only the owner may change or read ACLs.
	if err := cb.SetACL(bg, "shared", nil); !errors.Is(err, cloud.ErrAccessDenied) {
		t.Fatalf("bob SetACL err = %v, want ErrAccessDenied", err)
	}
	if _, err := cb.GetACL(bg, "shared"); !errors.Is(err, cloud.ErrAccessDenied) {
		t.Fatalf("bob GetACL err = %v, want ErrAccessDenied", err)
	}
	grants, err := ca.GetACL(bg, "shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(grants) != 1 || grants[0].Grantee != bob || grants[0].Perm != cloud.PermReadWrite {
		t.Fatalf("unexpected grants %+v", grants)
	}
	// Revoking (PermNone) removes the grant.
	if err := ca.SetACL(bg, "shared", []cloud.Grant{{Grantee: bob, Perm: cloud.PermNone}}); err != nil {
		t.Fatal(err)
	}
	if _, err := cb.Get(bg, "shared"); !errors.Is(err, cloud.ErrAccessDenied) {
		t.Fatalf("after revoke, bob Get err = %v, want ErrAccessDenied", err)
	}
}

func TestACLOnMissingObject(t *testing.T) {
	p := newTestProvider()
	c := p.MustClient(p.CreateAccount("alice"))
	if err := c.SetACL(bg, "missing", nil); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("SetACL err = %v, want ErrNotFound", err)
	}
	if _, err := c.GetACL(bg, "missing"); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("GetACL err = %v, want ErrNotFound", err)
	}
}

func TestUnknownAccountRejected(t *testing.T) {
	p := newTestProvider()
	if _, err := p.Client("not-an-account"); err == nil {
		t.Fatal("Client with unknown account should fail")
	}
}

func TestEventualConsistencyWindow(t *testing.T) {
	clk := clock.NewSim(time.Unix(1000, 0))
	p := NewProvider(Options{
		Name:              "ec",
		ConsistencyWindow: 10 * time.Second,
		Clock:             clk,
		Seed:              7,
	})
	c := p.MustClient(p.CreateAccount("alice"))
	if err := c.Put(bg, "obj", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Before the window has certainly elapsed the object may be invisible;
	// after the full window it must be visible.
	clk.Advance(11 * time.Second)
	got, err := c.Get(bg, "obj")
	if err != nil {
		t.Fatalf("after full window, err = %v", err)
	}
	if string(got) != "v1" {
		t.Fatalf("got %q", got)
	}
}

func TestEventualConsistencyServesStaleVersion(t *testing.T) {
	clk := clock.NewSim(time.Unix(1000, 0))
	p := NewProvider(Options{Name: "ec", ConsistencyWindow: 10 * time.Second, Clock: clk, Seed: 42})
	c := p.MustClient(p.CreateAccount("alice"))
	if err := c.Put(bg, "obj", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Minute) // v1 now fully visible
	if err := c.Put(bg, "obj", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	// Immediately after the second write the store may legitimately return
	// either v1 or v2, but never an error and never garbage.
	got, err := c.Get(bg, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v1" && string(got) != "v2" {
		t.Fatalf("got unexpected payload %q", got)
	}
	clk.Advance(time.Minute)
	got, err = c.Get(bg, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v2" {
		t.Fatalf("after window, got %q, want v2", got)
	}
}

func TestFaultUnavailable(t *testing.T) {
	p := newTestProvider()
	c := p.MustClient(p.CreateAccount("alice"))
	if err := c.Put(bg, "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	p.SetFault(FaultUnavailable)
	if _, err := c.Get(bg, "obj"); !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("Get err = %v, want ErrUnavailable", err)
	}
	if err := c.Put(bg, "obj2", []byte("y")); !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("Put err = %v, want ErrUnavailable", err)
	}
	if _, err := c.List(bg, ""); !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("List err = %v, want ErrUnavailable", err)
	}
	p.SetFault(FaultNone)
	if _, err := c.Get(bg, "obj"); err != nil {
		t.Fatalf("after recovery, err = %v", err)
	}
}

func TestFaultCorruptReturnsDifferentBytes(t *testing.T) {
	p := newTestProvider()
	c := p.MustClient(p.CreateAccount("alice"))
	orig := bytes.Repeat([]byte{1, 2, 3, 4}, 100)
	if err := c.Put(bg, "obj", orig); err != nil {
		t.Fatal(err)
	}
	p.SetFault(FaultCorrupt)
	got, err := c.Get(bg, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, orig) {
		t.Fatal("corrupting provider returned pristine data")
	}
	// The stored copy must remain intact (corruption is on the read path).
	p.SetFault(FaultNone)
	got, err = c.Get(bg, "obj")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, orig) {
		t.Fatal("stored data was corrupted permanently")
	}
}

func TestFaultLoseWrites(t *testing.T) {
	p := newTestProvider()
	c := p.MustClient(p.CreateAccount("alice"))
	p.SetFault(FaultLoseWrites)
	if err := c.Put(bg, "obj", []byte("x")); err != nil {
		t.Fatalf("lose-writes provider must still acknowledge, got %v", err)
	}
	p.SetFault(FaultNone)
	if _, err := c.Get(bg, "obj"); !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound (write was dropped)", err)
	}
}

func TestUsageMetering(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	p := NewProvider(Options{Name: "meter", Clock: clk})
	alice := p.CreateAccount("alice")
	c := p.MustClient(alice)

	payload := make([]byte, 1000)
	if err := c.Put(bg, "obj", payload); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(bg, "obj"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.List(bg, ""); err != nil {
		t.Fatal(err)
	}
	u := p.Usage(alice)
	if u.PutRequests != 1 || u.GetRequests != 1 || u.ListRequests != 1 {
		t.Fatalf("request counts = %+v", u)
	}
	if u.BytesIn != 1000 || u.BytesOut != 1000 {
		t.Fatalf("bytes in/out = %d/%d, want 1000/1000", u.BytesIn, u.BytesOut)
	}
	if u.StoredBytes != 1000 {
		t.Fatalf("stored bytes = %d, want 1000", u.StoredBytes)
	}
	// Storage byte-hours integrate over simulated time.
	clk.Advance(2 * time.Hour)
	u = p.Usage(alice)
	if u.ByteHours < 1999 || u.ByteHours > 2001 {
		t.Fatalf("byte-hours = %f, want ~2000", u.ByteHours)
	}
	// Deleting stops accumulation.
	if err := c.Delete(bg, "obj"); err != nil {
		t.Fatal(err)
	}
	u = p.Usage(alice)
	if u.StoredBytes != 0 {
		t.Fatalf("stored bytes after delete = %d, want 0", u.StoredBytes)
	}
}

func TestInboundTrafficIsMeteredSeparatelyFromOutbound(t *testing.T) {
	// The "always write / avoid reading" principle relies on inbound traffic
	// being free; the meter must keep the two directions separate so pricing
	// can charge only the outbound direction.
	p := newTestProvider()
	alice := p.CreateAccount("alice")
	c := p.MustClient(alice)
	if err := c.Put(bg, "a", make([]byte, 5000)); err != nil {
		t.Fatal(err)
	}
	u := p.Usage(alice)
	if u.BytesIn != 5000 || u.BytesOut != 0 {
		t.Fatalf("usage = %+v; want 5000 in, 0 out", u)
	}
}

func TestLatencySimulationWithSimClock(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	p := NewProvider(Options{
		Name:    "latency",
		Latency: LatencyProfile{RTT: 100 * time.Millisecond},
		Clock:   clk,
	})
	c := p.MustClient(p.CreateAccount("alice"))
	done := make(chan error, 1)
	go func() { done <- c.Put(bg, "obj", []byte("x")) }()
	// The Put should be blocked on the simulated clock until we advance it.
	waitForPending(t, clk, 1)
	select {
	case <-done:
		t.Fatal("Put completed before latency elapsed")
	default:
	}
	clk.Advance(200 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestLatencyScaleReducesDelay(t *testing.T) {
	p := NewProvider(Options{
		Name:         "scaled",
		Latency:      LatencyProfile{RTT: 50 * time.Millisecond},
		LatencyScale: 0.01, // 0.5ms real sleep
	})
	c := p.MustClient(p.CreateAccount("alice"))
	start := time.Now()
	if err := c.Put(bg, "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 40*time.Millisecond {
		t.Fatalf("scaled Put took %v, expected well under the unscaled 50ms", elapsed)
	}
}

func TestDefaultProfilesCoverAllProviders(t *testing.T) {
	profiles := DefaultProfiles()
	for _, k := range []ProviderKind{AmazonS3, AzureBlob, GoogleStorage, RackspaceFiles, LocalNull} {
		if _, ok := profiles[k]; !ok {
			t.Errorf("missing profile for %s", k)
		}
	}
	if profiles[AmazonS3].Latency.RTT <= 0 {
		t.Error("S3 profile must have a positive RTT")
	}
}

func TestNewCoCProvidersReturnsFourDistinct(t *testing.T) {
	ps := NewCoCProviders(0.0, clock.Real(), 1)
	if len(ps) != 4 {
		t.Fatalf("got %d providers, want 4", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name()] = true
	}
	if len(names) != 4 {
		t.Fatalf("provider names are not distinct: %v", names)
	}
}

func TestObjectCountAndTotalRequests(t *testing.T) {
	p := newTestProvider()
	c := p.MustClient(p.CreateAccount("alice"))
	for i := 0; i < 3; i++ {
		if err := c.Put(bg, string(rune('a'+i)), []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Delete(bg, "a"); err != nil {
		t.Fatal(err)
	}
	if got := p.ObjectCount(); got != 2 {
		t.Fatalf("ObjectCount = %d, want 2", got)
	}
	if got := p.TotalRequests(); got != 4 {
		t.Fatalf("TotalRequests = %d, want 4", got)
	}
}

// waitForPending spins until the simulated clock has n parked waiters.
func waitForPending(t *testing.T, clk *clock.Sim, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for clk.Pending() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d pending sleepers (have %d)", n, clk.Pending())
		}
		time.Sleep(100 * time.Microsecond)
	}
}
