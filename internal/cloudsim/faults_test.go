package cloudsim

import (
	"context"
	"errors"
	"testing"
	"time"

	"scfs/internal/clock"
	"scfs/internal/cloud"
)

func faultTestClient(t *testing.T, opts Options) (*Provider, cloud.ObjectStore) {
	t.Helper()
	if opts.Name == "" {
		opts.Name = "sim"
	}
	p := NewProvider(opts)
	c := p.MustClient(p.CreateAccount("alice"))
	return p, c
}

func TestFaultSpecProbabilisticFlake(t *testing.T) {
	p, c := faultTestClient(t, Options{Seed: 7})
	if err := c.Put(context.Background(), "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	p.SetFaults(FaultSpec{Mode: FaultUnavailable, Probability: 0.3})
	fails := 0
	for i := 0; i < 500; i++ {
		if _, err := c.Get(context.Background(), "obj"); err != nil {
			if !errors.Is(err, cloud.ErrUnavailable) {
				t.Fatalf("unexpected error class: %v", err)
			}
			fails++
		}
	}
	if fails < 100 || fails > 200 {
		t.Fatalf("30%% flake struck %d/500 requests", fails)
	}
}

func TestFaultSpecOpMask(t *testing.T) {
	p, c := faultTestClient(t, Options{})
	if err := c.Put(context.Background(), "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Throttle only writes: reads keep flowing.
	p.SetFaults(FaultSpec{Mode: FaultThrottle, Ops: MaskWrites})
	if err := c.Put(context.Background(), "obj2", []byte("y")); !errors.Is(err, cloud.ErrThrottled) {
		t.Fatalf("write err = %v, want ErrThrottled", err)
	}
	if err := c.Delete(context.Background(), "obj"); !errors.Is(err, cloud.ErrThrottled) {
		t.Fatalf("delete err = %v, want ErrThrottled", err)
	}
	if _, err := c.Get(context.Background(), "obj"); err != nil {
		t.Fatalf("read should be unaffected: %v", err)
	}
	if _, err := c.Head(context.Background(), "obj"); err != nil {
		t.Fatalf("head should be unaffected: %v", err)
	}
	if _, err := c.List(context.Background(), ""); err != nil {
		t.Fatalf("list should be unaffected: %v", err)
	}
}

func TestFaultSpecTimeWindowedOutage(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	p, c := faultTestClient(t, Options{Clock: clk})
	if err := c.Put(context.Background(), "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Outage from t+10s lasting 5s; the provider heals itself afterwards.
	p.SetFaults(FaultSpec{Mode: FaultUnavailable, After: 10 * time.Second, For: 5 * time.Second})

	if _, err := c.Get(context.Background(), "obj"); err != nil {
		t.Fatalf("before the window: %v", err)
	}
	clk.Advance(12 * time.Second)
	if _, err := c.Get(context.Background(), "obj"); !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("inside the window err = %v, want ErrUnavailable", err)
	}
	clk.Advance(5 * time.Second)
	if _, err := c.Get(context.Background(), "obj"); err != nil {
		t.Fatalf("after the window the provider must have healed: %v", err)
	}
}

func TestFaultSpecCounterWindows(t *testing.T) {
	_, c := faultTestClient(t, Options{})
	p := c.(*client).p
	if err := c.Put(context.Background(), "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Let 2 Gets through, fail the next 3, then heal.
	p.SetFaults(FaultSpec{Mode: FaultUnavailable, Ops: MaskGet, AfterN: 2, FirstN: 3})
	var errs []bool
	for i := 0; i < 7; i++ {
		_, err := c.Get(context.Background(), "obj")
		errs = append(errs, err != nil)
	}
	want := []bool{false, false, true, true, true, false, false}
	for i := range want {
		if errs[i] != want[i] {
			t.Fatalf("request fates = %v, want %v", errs, want)
		}
	}
}

func TestFaultSpecScheduleOrderFirstWins(t *testing.T) {
	_, c := faultTestClient(t, Options{})
	p := c.(*client).p
	if err := c.Put(context.Background(), "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// First matching spec decides: the throttle masks the outage.
	p.SetFaults(
		FaultSpec{Mode: FaultThrottle, FirstN: 1},
		FaultSpec{Mode: FaultUnavailable},
	)
	if _, err := c.Get(context.Background(), "obj"); !errors.Is(err, cloud.ErrThrottled) {
		t.Fatalf("first request err = %v, want ErrThrottled", err)
	}
	if _, err := c.Get(context.Background(), "obj"); !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("second request err = %v, want the next spec's ErrUnavailable", err)
	}
}

func TestFaultHangParksUntilCancel(t *testing.T) {
	p, c := faultTestClient(t, Options{})
	if err := c.Put(context.Background(), "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	before := p.TotalRequests()
	p.SetFaults(FaultSpec{Mode: FaultHang, Ops: MaskGet})

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Get(ctx, "obj")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung request err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Fatal("hung request returned before the caller gave up")
	}
	if p.TotalRequests() != before+1 {
		t.Fatal("a hung request was accepted by the provider and must be counted")
	}
	// Writes are untouched by the Get-only hang.
	if err := c.Put(context.Background(), "obj2", []byte("y")); err != nil {
		t.Fatalf("hang leaked onto writes: %v", err)
	}
}

func TestFaultSlowLatencyFactor(t *testing.T) {
	clk := clock.NewSim(time.Unix(0, 0))
	p, c := faultTestClient(t, Options{
		Clock:   clk,
		Latency: LatencyProfile{RTT: 10 * time.Millisecond},
	})
	p.SetFaults(FaultSpec{Mode: FaultSlow, LatencyFactor: 4})

	done := make(chan error, 1)
	go func() { done <- c.Put(context.Background(), "obj", []byte("x")) }()
	// 10ms RTT x4 = 40ms of simulated time: not done at 39, done at 41.
	for clk.Pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	clk.Advance(39 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("gray-slow request finished before the inflated latency elapsed")
	case <-time.After(10 * time.Millisecond):
	}
	clk.Advance(2 * time.Millisecond)
	if err := <-done; err != nil {
		t.Fatalf("gray-slow request must succeed, got %v", err)
	}
}

func TestFaultErrorsWrapSentinels(t *testing.T) {
	p, c := faultTestClient(t, Options{Name: "azure-blob"})
	p.SetFault(FaultUnavailable)
	_, err := c.Get(context.Background(), "obj")
	if !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("err = %v, want wrapped ErrUnavailable", err)
	}
	if err.Error() == cloud.ErrUnavailable.Error() {
		t.Fatalf("error %q should carry provider context around the sentinel", err)
	}
}

func TestAddAndClearFaults(t *testing.T) {
	p, c := faultTestClient(t, Options{})
	if err := c.Put(context.Background(), "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	p.AddFault(FaultSpec{Mode: FaultUnavailable, Ops: MaskGet})
	p.AddFault(FaultSpec{Mode: FaultThrottle, Ops: MaskPut})
	if _, err := c.Get(context.Background(), "obj"); !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("get err = %v", err)
	}
	if err := c.Put(context.Background(), "o2", nil); !errors.Is(err, cloud.ErrThrottled) {
		t.Fatalf("put err = %v", err)
	}
	p.ClearFaults()
	if _, err := c.Get(context.Background(), "obj"); err != nil {
		t.Fatalf("after ClearFaults: %v", err)
	}
	if err := c.Put(context.Background(), "o2", nil); err != nil {
		t.Fatalf("after ClearFaults: %v", err)
	}
}

func TestSetFaultBackwardCompatible(t *testing.T) {
	p, c := faultTestClient(t, Options{})
	if err := c.Put(context.Background(), "obj", []byte("x")); err != nil {
		t.Fatal(err)
	}
	p.SetFault(FaultUnavailable)
	if p.Fault() != FaultUnavailable {
		t.Fatal("Fault() must echo SetFault")
	}
	if _, err := c.Get(context.Background(), "obj"); !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("err = %v", err)
	}
	p.SetFault(FaultNone)
	if p.Fault() != FaultNone {
		t.Fatal("Fault() must reset")
	}
	if _, err := c.Get(context.Background(), "obj"); err != nil {
		t.Fatalf("recovery must be immediate: %v", err)
	}
}
