package cloudsim

import (
	"time"

	"scfs/internal/clock"
)

// ProviderKind names one of the four storage clouds used in the paper's
// cloud-of-clouds backend (§4.1), plus a generic local profile for tests.
type ProviderKind string

const (
	// AmazonS3 models Amazon S3 (US) as seen from the paper's client site.
	AmazonS3 ProviderKind = "amazon-s3"
	// AzureBlob models Windows Azure Blob storage (Europe).
	AzureBlob ProviderKind = "azure-blob"
	// GoogleStorage models Google Cloud Storage (US).
	GoogleStorage ProviderKind = "google-storage"
	// RackspaceFiles models Rackspace Cloud Files (UK).
	RackspaceFiles ProviderKind = "rackspace-files"
	// LocalNull is a zero-latency, strongly consistent store for unit tests.
	LocalNull ProviderKind = "local-null"
)

// DefaultProfiles returns the latency/consistency profile for each provider
// kind. RTTs and throughputs approximate the measurements reported for the
// setup of the paper (client cluster in Portugal; 60–100 ms per cloud access,
// a few MB/s of sustained throughput on medium objects). They are intended to
// preserve ratios, not absolute bandwidth of any particular year.
func DefaultProfiles() map[ProviderKind]Options {
	return map[ProviderKind]Options{
		AmazonS3: {
			Name:              string(AmazonS3),
			Latency:           LatencyProfile{RTT: 80 * time.Millisecond, UploadBytesPerSec: 4 << 20, DownloadBytesPerSec: 6 << 20, JitterFraction: 0.15},
			ConsistencyWindow: 1200 * time.Millisecond,
		},
		AzureBlob: {
			Name:              string(AzureBlob),
			Latency:           LatencyProfile{RTT: 60 * time.Millisecond, UploadBytesPerSec: 4 << 20, DownloadBytesPerSec: 6 << 20, JitterFraction: 0.15},
			ConsistencyWindow: 600 * time.Millisecond,
		},
		GoogleStorage: {
			Name:              string(GoogleStorage),
			Latency:           LatencyProfile{RTT: 90 * time.Millisecond, UploadBytesPerSec: 3 << 20, DownloadBytesPerSec: 5 << 20, JitterFraction: 0.15},
			ConsistencyWindow: 900 * time.Millisecond,
		},
		RackspaceFiles: {
			Name:              string(RackspaceFiles),
			Latency:           LatencyProfile{RTT: 55 * time.Millisecond, UploadBytesPerSec: 3 << 20, DownloadBytesPerSec: 5 << 20, JitterFraction: 0.15},
			ConsistencyWindow: 800 * time.Millisecond,
		},
		LocalNull: {
			Name: string(LocalNull),
		},
	}
}

// NewProviderKind creates a provider of the given kind with the default
// profile, applying the latency scale and clock. seed controls its private
// randomness.
func NewProviderKind(kind ProviderKind, latencyScale float64, clk clock.Clock, seed int64) *Provider {
	opts, ok := DefaultProfiles()[kind]
	if !ok {
		opts = Options{Name: string(kind)}
	}
	opts.LatencyScale = latencyScale
	opts.Clock = clk
	opts.Seed = seed
	return NewProvider(opts)
}

// CoCKinds returns the provider kinds of the paper's four-cloud setup, in
// the dispatch-index order NewCoCProviders creates them. The bundled price
// table (pricing.DefaultTable) carries a rate card for each of these names;
// a pricing test keeps the two lists in sync.
func CoCKinds() []ProviderKind {
	return []ProviderKind{AmazonS3, GoogleStorage, RackspaceFiles, AzureBlob}
}

// NewCoCProviders creates the four-provider cloud-of-clouds setup used by the
// paper (Amazon S3, Google Cloud Storage, Rackspace, Windows Azure).
func NewCoCProviders(latencyScale float64, clk clock.Clock, seed int64) []*Provider {
	kinds := CoCKinds()
	out := make([]*Provider, len(kinds))
	for i, k := range kinds {
		out[i] = NewProviderKind(k, latencyScale, clk, seed+int64(i))
	}
	return out
}
