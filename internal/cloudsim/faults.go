package cloudsim

import (
	"time"
)

// OpKind identifies one ObjectStore operation for fault targeting.
type OpKind int

const (
	// OpPut is ObjectStore.Put.
	OpPut OpKind = iota
	// OpGet is ObjectStore.Get.
	OpGet
	// OpHead is ObjectStore.Head.
	OpHead
	// OpDelete is ObjectStore.Delete.
	OpDelete
	// OpList is ObjectStore.List.
	OpList
	// OpACL covers SetACL and GetACL.
	OpACL
)

// OpMask selects the operations a FaultSpec applies to; zero means all.
type OpMask uint

const (
	// MaskPut selects Put requests.
	MaskPut OpMask = 1 << OpPut
	// MaskGet selects Get requests.
	MaskGet OpMask = 1 << OpGet
	// MaskHead selects Head requests.
	MaskHead OpMask = 1 << OpHead
	// MaskDelete selects Delete requests.
	MaskDelete OpMask = 1 << OpDelete
	// MaskList selects List requests.
	MaskList OpMask = 1 << OpList
	// MaskACL selects SetACL/GetACL requests.
	MaskACL OpMask = 1 << OpACL

	// MaskReads selects the read-side operations.
	MaskReads = MaskGet | MaskHead | MaskList
	// MaskWrites selects the write-side operations.
	MaskWrites = MaskPut | MaskDelete
	// MaskAll selects every operation (same as zero, but explicit).
	MaskAll = MaskPut | MaskGet | MaskHead | MaskDelete | MaskList | MaskACL
)

func (m OpMask) matches(op OpKind) bool {
	return m == 0 || m&(1<<op) != 0
}

// FaultSpec is one entry of a provider's fault schedule: a fault Mode plus
// the predicate deciding which requests it strikes. Predicates compose —
// a spec can say "30% of Get requests", "every write between t+2s and
// t+5s", or "the first 3 requests after the next 10". The zero predicate
// (only Mode set) strikes every request, reproducing the old static
// SetFault behaviour.
//
// A schedule holds any number of specs; each request is tested against them
// in order and the first spec that fires decides the request's fate. Specs
// are evaluated per request, so probabilistic flake rates and
// counter-windowed faults interleave healthy and faulty responses the way
// a real gray-failing provider does.
type FaultSpec struct {
	// Mode is how a struck request misbehaves.
	Mode FaultMode
	// Ops selects which operations the spec applies to (0 = all).
	Ops OpMask
	// Probability in (0, 1) strikes each matching request independently at
	// that rate; 0 (and anything >= 1) strikes every matching request.
	Probability float64
	// After delays the spec's activation relative to its installation: the
	// spec ignores requests arriving earlier. Uses the provider's clock.
	After time.Duration
	// For bounds the active window; 0 keeps the spec active forever. A
	// time-windowed outage is After+For; the provider heals itself when the
	// window passes, no second SetFaults call needed.
	For time.Duration
	// AfterN lets the first N matching requests through unharmed before the
	// spec starts striking (an "outage mid-run" in request counts).
	AfterN int64
	// FirstN strikes only the first N matching requests past AfterN, then
	// retires the spec (0 = no limit). A flaky startup, a bounded burst.
	FirstN int64
	// LatencyFactor inflates the simulated latency of struck requests in
	// FaultSlow mode (0 means the classic 10x). Ignored by other modes.
	LatencyFactor float64
}

// faultEntry is an installed spec plus its runtime counters.
type faultEntry struct {
	spec        FaultSpec
	installedAt time.Time
	seen        int64 // matching requests observed (for AfterN/FirstN)
}

// decision is the fate of one request, settled once at request entry and
// honoured by both the latency-simulation phase and the operation itself,
// so a struck request misbehaves coherently end to end.
type decision struct {
	mode          FaultMode
	latencyFactor float64 // 0 = 1.0
}

var healthy = decision{mode: FaultNone}

// SetFaults replaces the provider's fault schedule. Specs are evaluated in
// the given order; the first one that fires decides each request. Windowed
// specs (After/For) are timed relative to this call.
func (p *Provider) SetFaults(specs ...FaultSpec) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.clk.Now()
	p.faults = p.faults[:0]
	for _, s := range specs {
		if s.Mode == FaultNone {
			continue
		}
		p.faults = append(p.faults, &faultEntry{spec: s, installedAt: now})
	}
}

// AddFault appends one spec to the schedule without disturbing the rest.
func (p *Provider) AddFault(spec FaultSpec) {
	if spec.Mode == FaultNone {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = append(p.faults, &faultEntry{spec: spec, installedAt: p.clk.Now()})
}

// ClearFaults heals the provider: the whole schedule is dropped.
func (p *Provider) ClearFaults() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = p.faults[:0]
	p.staticFault = FaultNone
}

// SetFault switches the provider to one unconditional fault mode (the
// pre-schedule interface, kept for the many tests that flip a provider
// wholesale). It replaces any installed schedule; FaultNone heals.
func (p *Provider) SetFault(mode FaultMode) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.faults = p.faults[:0]
	p.staticFault = mode
	if mode != FaultNone {
		p.faults = append(p.faults, &faultEntry{spec: FaultSpec{Mode: mode}, installedAt: p.clk.Now()})
	}
}

// Fault returns the mode most recently set with SetFault (FaultNone when a
// composite schedule is installed instead).
func (p *Provider) Fault() FaultMode {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.staticFault
}

// beginRequest settles the fate of one incoming request against the fault
// schedule: the first spec whose predicate fires wins. Counters advance
// even for specs that end up not firing this request (AfterN counts the
// requests that got through), so schedules behave deterministically under
// sequential traffic.
func (p *Provider) beginRequest(op OpKind) decision {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.faults) == 0 {
		return healthy
	}
	now := p.clk.Now()
	for _, e := range p.faults {
		s := &e.spec
		if !s.Ops.matches(op) {
			continue
		}
		if s.After > 0 && now.Sub(e.installedAt) < s.After {
			continue
		}
		if s.For > 0 && now.Sub(e.installedAt) >= s.After+s.For {
			continue
		}
		e.seen++
		if e.seen <= s.AfterN {
			continue
		}
		if s.FirstN > 0 && e.seen > s.AfterN+s.FirstN {
			continue
		}
		if s.Probability > 0 && s.Probability < 1 && p.rng.Float64() >= s.Probability {
			continue
		}
		d := decision{mode: s.Mode}
		if s.Mode == FaultSlow {
			d.latencyFactor = s.LatencyFactor
			if d.latencyFactor <= 0 {
				d.latencyFactor = 10
			}
		}
		return d
	}
	return healthy
}
