// Package telemetry is the observability plane of SCFS: a zero-dependency
// metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms), request-scoped traces of quorum fan-outs carried on
// context.Context, and snapshot/export machinery (JSON, Prometheus text,
// structured event log) that the facade's debug server and Mount.Stats()
// serve.
//
// The package is built for the hot path it measures. Every instrument is a
// pointer whose methods are safe on nil — a mount without telemetry passes
// nil instruments everywhere and pays a single predicted branch per call
// site. Callers resolve instruments once (at construction, not per
// operation), so an enabled mount pays one atomic add per event and no map
// lookups or allocations on the data path.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count. The zero value is
// ready to use; a nil *Counter is a disabled instrument (Add is a no-op).
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n < 0 is ignored: counters never go down).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready to
// use; a nil *Gauge is a disabled instrument.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (which may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the fixed bucket count of every histogram: bucket i holds
// observations whose nanosecond value has bit length i, i.e. durations in
// [2^(i-1), 2^i). Power-of-two boundaries make Observe a bits.Len64 and an
// atomic add — no search — while spanning 1ns to ~9min, plus an overflow
// bucket.
const histBuckets = 40

// Histogram is a fixed-bucket latency histogram with exponential
// (power-of-two nanosecond) boundaries. The zero value is ready to use; a
// nil *Histogram is a disabled instrument.
type Histogram struct {
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	bucket [histBuckets]atomic.Int64
	// exemplar holds, per bucket, the compact trace ID (TraceID.Short) of
	// the most recent traced observation that landed there — the link from
	// "the p99 bucket grew" to the flight-recorded trace that explains it.
	exemplar [histBuckets]atomic.Uint64
}

// bucketIndex maps a nanosecond duration to its bucket.
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	i := bits.Len64(uint64(ns))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	return i
}

// BucketUpperNanos returns the inclusive upper bound (in nanoseconds) of
// bucket i; the last bucket is unbounded.
func BucketUpperNanos(i int) int64 {
	if i >= histBuckets-1 {
		return int64(1)<<62 - 1
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveExemplar(d, 0)
}

// ObserveExemplar records one duration and, when exemplar is non-zero,
// attaches it to the duration's bucket as the bucket's latest exemplar
// (last-write-wins; pass Trace.ExemplarID, which is 0 for untraced
// operations). One atomic store over Observe — cheap enough to call
// unconditionally on traced paths.
func (h *Histogram) ObserveExemplar(d time.Duration, exemplar uint64) {
	if h == nil {
		return
	}
	ns := int64(d)
	i := bucketIndex(ns)
	h.count.Add(1)
	h.sum.Add(ns)
	h.bucket[i].Add(1)
	if exemplar != 0 {
		h.exemplar[i].Store(exemplar)
	}
}

// snapshot captures the histogram's current contents.
func (h *Histogram) snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	for i := range h.bucket {
		s.Buckets[i] = h.bucket[i].Load()
		s.Exemplars[i] = h.exemplar[i].Load()
	}
	return s
}

// Registry owns the named instruments of one mount. Instruments are
// created on first use and live for the registry's lifetime; callers are
// expected to resolve them once and hold the pointers. A nil *Registry is
// a disabled registry: every lookup returns a nil (disabled) instrument
// and Snapshot returns the zero Snapshot.
//
// Instrument names carry their labels Prometheus-style in the name itself,
// e.g. `rpc_total{cloud="c0",op="get",outcome="ok"}` — see Name.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	gaugeFns map[string]func() int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		gaugeFns: make(map[string]func() int64),
	}
}

// Name renders an instrument name from a base and label key/value pairs:
// Name("rpc_total", "cloud", "c0", "op", "get") →
// `rpc_total{cloud="c0",op="get"}`. With no labels it returns the base.
func Name(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var b strings.Builder
	b.WriteString(base)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// Base strips the label block from an instrument name:
// Base(`rpc_total{cloud="c0"}`) → "rpc_total".
func Base(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = new(Counter)
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = new(Gauge)
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = new(Histogram)
		r.hists[name] = h
	}
	return h
}

// RegisterGauge registers a pull-style gauge: fn is evaluated at snapshot
// time (queue depths, cache sizes, metered usage). Re-registering a name
// replaces the function. No-op on a nil registry.
func (r *Registry) RegisterGauge(name string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.gaugeFns[name] = fn
	r.mu.Unlock()
}

// Snapshot captures every instrument's current value, evaluating
// registered gauge functions. Safe to call concurrently with updates (each
// value is read atomically; the snapshot as a whole is not a consistent
// cut, which is fine for monitoring).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	fns := make(map[string]func() int64, len(r.gaugeFns))
	for k, v := range r.gaugeFns {
		fns[k] = v
	}
	r.mu.Unlock()

	s.Counters = make(map[string]int64, len(counters))
	for k, v := range counters {
		s.Counters[k] = v.Value()
	}
	s.Gauges = make(map[string]int64, len(gauges)+len(fns))
	for k, v := range gauges {
		s.Gauges[k] = v.Value()
	}
	for k, fn := range fns {
		s.Gauges[k] = fn()
	}
	s.Histograms = make(map[string]HistogramSnapshot, len(hists))
	for k, v := range hists {
		s.Histograms[k] = v.snapshot()
	}
	return s
}

// HistogramSnapshot is a histogram's frozen contents. Buckets is indexed
// by the fixed power-of-two scheme (see BucketUpperNanos).
type HistogramSnapshot struct {
	Count    int64              `json:"count"`
	SumNanos int64              `json:"sum_nanos"`
	Buckets  [histBuckets]int64 `json:"buckets"`
	// Exemplars carries, per bucket, the compact trace ID of the latest
	// traced observation (0 = none) — look the full trace up in the flight
	// recorder or trace ring by its ID suffix.
	Exemplars [histBuckets]uint64 `json:"exemplars,omitempty"`
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket counts,
// returning the upper bound of the bucket holding the q-th observation.
func (h HistogramSnapshot) Quantile(q float64) time.Duration {
	if h.Count == 0 {
		return 0
	}
	rank := int64(q * float64(h.Count))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, n := range h.Buckets {
		seen += n
		if seen >= rank {
			return time.Duration(BucketUpperNanos(i))
		}
	}
	return time.Duration(BucketUpperNanos(histBuckets - 1))
}

// Mean returns the average observed duration.
func (h HistogramSnapshot) Mean() time.Duration {
	if h.Count == 0 {
		return 0
	}
	return time.Duration(h.SumNanos / h.Count)
}

// merge adds o's contents into h. Exemplars are last-write-wins like the
// live histogram: o's exemplar replaces h's where o has one.
func (h HistogramSnapshot) merge(o HistogramSnapshot) HistogramSnapshot {
	h.Count += o.Count
	h.SumNanos += o.SumNanos
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
		if o.Exemplars[i] != 0 {
			h.Exemplars[i] = o.Exemplars[i]
		}
	}
	return h
}

// Snapshot is a point-in-time copy of a registry: plain maps, safe to
// marshal, diff, and merge. The zero value is an empty snapshot.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Counter returns the named counter's value (0 when absent).
func (s Snapshot) Counter(name string) int64 { return s.Counters[name] }

// Gauge returns the named gauge's value (0 when absent).
func (s Snapshot) Gauge(name string) int64 { return s.Gauges[name] }

// Total sums every counter whose base name (the part before the label
// block) equals base: Total("rpc_total") aggregates across all clouds,
// ops, and outcomes.
func (s Snapshot) Total(base string) int64 {
	var sum int64
	for k, v := range s.Counters {
		if Base(k) == base {
			sum += v
		}
	}
	return sum
}

// Merge returns a new snapshot with o's values added to s's (counters and
// histograms sum; gauges sum too, which treats them as additive across
// shards — the use case is merging per-mount snapshots of one process).
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)+len(o.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)+len(o.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)+len(o.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range o.Counters {
		out.Counters[k] += v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range o.Gauges {
		out.Gauges[k] += v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	for k, v := range o.Histograms {
		out.Histograms[k] = out.Histograms[k].merge(v)
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON. Map keys are emitted in
// sorted order (encoding/json's behaviour), so output is deterministic.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format, deterministically ordered. Instrument names already carry their
// labels; histograms expand into the _bucket/_sum/_count series with
// cumulative le bounds in seconds.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	names := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, s.Counters[k]); err != nil {
			return err
		}
	}

	names = names[:0]
	for k := range s.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, s.Gauges[k]); err != nil {
			return err
		}
	}

	names = names[:0]
	for k := range s.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if err := writePromHistogram(w, k, s.Histograms[k]); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram expands one histogram into Prometheus series. Only
// non-empty buckets get their own le line (plus the +Inf catch-all), which
// keeps the exposition small without losing any mass.
func writePromHistogram(w io.Writer, name string, h HistogramSnapshot) error {
	base, labels := splitName(name)
	plain := ""
	if labels != "" {
		plain = "{" + strings.TrimSuffix(labels, ",") + "}"
	}
	var cum int64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		cum += n
		le := float64(BucketUpperNanos(i)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"%g\"} %d\n", base, labels, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", base, labels, h.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %g\n", base, plain, float64(h.SumNanos)/1e9); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", base, plain, h.Count)
	return err
}

// splitName splits `base{a="b"}` into "base" and `a="b",` (trailing comma
// ready for an extra label; empty when the name has no labels).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	inner := strings.TrimSuffix(name[i+1:], "}")
	if inner == "" {
		return name[:i], ""
	}
	return name[:i], inner + ","
}
