package telemetry

import (
	"sort"
	"sync"
)

// FlightRecorder retains exemplar traces per operation class so the
// evidence survives the traffic that produced it. The Tracer's ring is
// most-recent-wins: a burst of healthy operations evicts the one slow or
// failed trace an operator needed. The recorder keeps, per op class
// (Trace.Op):
//
//   - the slowest SlowN traces seen so far, and
//   - the last FlaggedN *flagged* traces — errored, breaker-skipped, or
//     in flight across a replica-group view change — regardless of speed.
//
// Total memory is bounded twice over: each trace caps its own span count
// (maxTraceSpans), and the recorder holds at most SpanBudget spans across
// everything it retains, evicting the least interesting exemplars (the
// fastest retained slow traces first, then the oldest flagged ones) when
// a new admission would exceed it.
//
// A nil *FlightRecorder is disabled: every method no-ops, so the Tracer
// offers traces unconditionally.
type FlightRecorder struct {
	mu      sync.Mutex
	classes map[string]*flightClass

	slowN      int
	flaggedN   int
	spanBudget int

	spans    int // spans retained right now, across all classes
	seen     int64
	admitted int64
	evicted  int64
}

// flightClass is one op class's retention state.
type flightClass struct {
	// slow is sorted ascending by duration: slow[0] is the fastest
	// retained exemplar, the first to go when a slower one arrives.
	slow []*Trace
	// flagged is FIFO, oldest first.
	flagged []*Trace
}

// Default retention knobs: 8 slowest and 32 flagged traces per op class,
// 16384 retained spans overall (~2 MiB of spans at ~128 B each).
const (
	defaultSlowN      = 8
	defaultFlaggedN   = 32
	defaultSpanBudget = 16384
)

// NewFlightRecorder creates a recorder retaining the slowN slowest and
// flaggedN most recent flagged traces per op class, within a global
// budget of spanBudget retained spans. Zero or negative arguments select
// the defaults (8, 32, 16384).
func NewFlightRecorder(slowN, flaggedN, spanBudget int) *FlightRecorder {
	if slowN <= 0 {
		slowN = defaultSlowN
	}
	if flaggedN <= 0 {
		flaggedN = defaultFlaggedN
	}
	if spanBudget <= 0 {
		spanBudget = defaultSpanBudget
	}
	return &FlightRecorder{
		classes:    make(map[string]*flightClass),
		slowN:      slowN,
		flaggedN:   flaggedN,
		spanBudget: spanBudget,
	}
}

// traceCost is the span-budget cost of retaining t. The +1 charges the
// trace itself, so span-free traces still consume budget.
func traceCost(t *Trace) int { return t.SpanCount() + 1 }

// Offer considers one finished trace for retention. Called by the Tracer
// on every Finish; must only see finished (immutable) traces.
func (fr *FlightRecorder) Offer(t *Trace) {
	if fr == nil || t == nil {
		return
	}
	cost := traceCost(t)
	flagged := t.Flagged()
	dur := t.Duration()

	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.seen++
	c := fr.classes[t.Op]
	if c == nil {
		c = &flightClass{}
		fr.classes[t.Op] = c
	}
	if flagged {
		if len(c.flagged) >= fr.flaggedN {
			fr.dropLocked(c.flagged[0])
			copy(c.flagged, c.flagged[1:])
			c.flagged = c.flagged[:len(c.flagged)-1]
		}
		c.flagged = append(c.flagged, t)
	} else {
		if len(c.slow) >= fr.slowN {
			if dur <= c.slow[0].Duration() {
				return // faster than every retained exemplar
			}
			fr.dropLocked(c.slow[0])
			copy(c.slow, c.slow[1:])
			c.slow = c.slow[:len(c.slow)-1]
		}
		// Insert keeping ascending duration order; SlowN is small, so a
		// linear scan beats heap bookkeeping.
		i := sort.Search(len(c.slow), func(i int) bool { return c.slow[i].Duration() > dur })
		c.slow = append(c.slow, nil)
		copy(c.slow[i+1:], c.slow[i:])
		c.slow[i] = t
	}
	fr.admitted++
	fr.spans += cost
	fr.enforceBudgetLocked()
}

// dropLocked accounts for one evicted trace.
func (fr *FlightRecorder) dropLocked(t *Trace) {
	fr.spans -= traceCost(t)
	fr.evicted++
}

// enforceBudgetLocked evicts exemplars until the span budget holds again:
// fastest retained slow traces first (across all classes), then oldest
// flagged ones. The most recently admitted trace is evicted last only if
// it alone exceeds the whole budget.
func (fr *FlightRecorder) enforceBudgetLocked() {
	for fr.spans > fr.spanBudget {
		if fr.retainedLocked() <= 1 {
			return // never evict the last exemplar chasing an unmeetable budget
		}
		var victimClass *flightClass
		victimFlagged := false
		// Fastest slow exemplar anywhere.
		for _, c := range fr.classes {
			if len(c.slow) == 0 {
				continue
			}
			if victimClass == nil || c.slow[0].Duration() < victimClass.slow[0].Duration() {
				victimClass = c
			}
		}
		if victimClass == nil {
			// No slow exemplars left: oldest flagged trace anywhere.
			var oldest *Trace
			for _, c := range fr.classes {
				if len(c.flagged) == 0 {
					continue
				}
				if oldest == nil || c.flagged[0].Start.Before(oldest.Start) {
					victimClass, oldest = c, c.flagged[0]
				}
			}
			victimFlagged = true
		}
		if victimClass == nil {
			return // nothing retained; a pathological budget
		}
		if victimFlagged {
			fr.dropLocked(victimClass.flagged[0])
			copy(victimClass.flagged, victimClass.flagged[1:])
			victimClass.flagged = victimClass.flagged[:len(victimClass.flagged)-1]
		} else {
			fr.dropLocked(victimClass.slow[0])
			copy(victimClass.slow, victimClass.slow[1:])
			victimClass.slow = victimClass.slow[:len(victimClass.slow)-1]
		}
	}
}

// retainedLocked counts currently retained traces.
func (fr *FlightRecorder) retainedLocked() int {
	n := 0
	for _, c := range fr.classes {
		n += len(c.slow) + len(c.flagged)
	}
	return n
}

// Classes returns the op classes with retained traces, sorted.
func (fr *FlightRecorder) Classes() []string {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]string, 0, len(fr.classes))
	for k, c := range fr.classes {
		if len(c.slow)+len(c.flagged) > 0 {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Slowest returns the retained slow exemplars of one op class, slowest
// first.
func (fr *FlightRecorder) Slowest(class string) []*Trace {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	c := fr.classes[class]
	if c == nil {
		return nil
	}
	out := make([]*Trace, len(c.slow))
	for i, t := range c.slow {
		out[len(out)-1-i] = t
	}
	return out
}

// Flagged returns the retained flagged exemplars of one op class, newest
// first.
func (fr *FlightRecorder) Flagged(class string) []*Trace {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	c := fr.classes[class]
	if c == nil {
		return nil
	}
	out := make([]*Trace, len(c.flagged))
	for i, t := range c.flagged {
		out[len(out)-1-i] = t
	}
	return out
}

// FlightStats summarizes a recorder's activity.
type FlightStats struct {
	// Seen counts every finished trace offered to the recorder.
	Seen int64 `json:"seen"`
	// Admitted counts traces that were retained (some later evicted).
	Admitted int64 `json:"admitted"`
	// Evicted counts retained traces later displaced by better exemplars
	// or the span budget.
	Evicted int64 `json:"evicted"`
	// Retained is the number of traces held right now.
	Retained int `json:"retained"`
	// Spans is the span-budget consumption right now.
	Spans int `json:"spans"`
	// SpanBudget is the configured global span budget.
	SpanBudget int `json:"span_budget"`
}

// Stats returns the recorder's activity counters.
func (fr *FlightRecorder) Stats() FlightStats {
	if fr == nil {
		return FlightStats{}
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return FlightStats{
		Seen:       fr.seen,
		Admitted:   fr.admitted,
		Evicted:    fr.evicted,
		Retained:   fr.retainedLocked(),
		Spans:      fr.spans,
		SpanBudget: fr.spanBudget,
	}
}
