package telemetry

import (
	"context"
	"errors"
	"log/slog"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndTrace(t *testing.T) {
	var tr *Tracer
	ctx, span := tr.Start(context.Background(), "read", "/x")
	if span != nil {
		t.Fatal("nil tracer must return a nil trace")
	}
	if FromContext(ctx) != nil {
		t.Fatal("nil tracer must not attach a trace")
	}
	span.Record(Span{Name: "meta.get"})
	span.SetVerdict(time.Millisecond)
	span.Finish()
	if tr.Recent(10) != nil || tr.Total() != 0 {
		t.Fatal("nil tracer must be empty")
	}
}

func TestStartJoinsParentTrace(t *testing.T) {
	tr := NewTracer(4)
	ctx, outer := tr.Start(context.Background(), "read", "/f")
	if outer == nil {
		t.Fatal("outer trace missing")
	}
	// An inner phase on the same context joins the parent: no new trace.
	ctx2, inner := tr.Start(ctx, "chunk", "/f#3")
	if inner != nil {
		t.Fatal("inner Start must join the parent trace")
	}
	if FromContext(ctx2) != outer {
		t.Fatal("context must still carry the outer trace")
	}
	inner.Finish() // no-op
	if tr.Total() != 0 {
		t.Fatal("joined phase must not export a trace")
	}
	outer.Finish()
	if tr.Total() != 1 {
		t.Fatal("outer finish must export exactly one trace")
	}
}

// TestQuorumCancellationSpans models a first-quorum-wins fan-out: four
// workers race, the first two answers decide, stragglers are cancelled and
// must show up as cancelled spans — and anything recorded after the trace
// finishes must not leak into the exported spans.
func TestQuorumCancellationSpans(t *testing.T) {
	tr := NewTracer(4)
	ctx, trace := tr.Start(context.Background(), "read", "/q")
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	const n, need = 4, 2
	results := make(chan int, n)
	var recorded sync.WaitGroup
	for i := 0; i < n; i++ {
		recorded.Add(1)
		go func(i int) {
			defer recorded.Done()
			start := time.Now()
			fast := i < need
			if !fast {
				<-fanCtx.Done() // straggler: cut down by the verdict
				FromContext(fanCtx).Record(Span{
					Name: "block.get", Target: "c", Start: start,
					Dur: time.Since(start), Outcome: SpanCanceled, Err: fanCtx.Err(),
				})
				return
			}
			FromContext(fanCtx).Record(Span{
				Name: "block.get", Target: "c", Start: start,
				Dur: time.Since(start), Outcome: SpanOK,
			})
			results <- i
		}(i)
	}
	for i := 0; i < need; i++ {
		<-results
	}
	trace.SetVerdict(time.Since(trace.Start))
	cancel()        // verdict: cancel stragglers
	recorded.Wait() // all spans recorded
	trace.Finish()

	spans := trace.Spans()
	var ok, cancelled int
	for _, s := range spans {
		switch s.Outcome {
		case SpanOK:
			ok++
		case SpanCanceled:
			cancelled++
			if !errors.Is(s.Err, context.Canceled) {
				t.Fatalf("cancelled span carries err %v", s.Err)
			}
		}
	}
	if ok != need || cancelled != n-need {
		t.Fatalf("spans: %d ok, %d cancelled; want %d/%d", ok, cancelled, need, n-need)
	}
	if trace.VerdictLatency() <= 0 {
		t.Fatal("verdict latency not recorded")
	}

	// A late straggler recording after Finish is dropped, not leaked.
	before := len(trace.Spans())
	trace.Record(Span{Name: "late", Outcome: SpanCanceled})
	if got := len(trace.Spans()); got != before {
		t.Fatalf("span recorded after finish leaked: %d -> %d", before, got)
	}
	// And only the first verdict sticks.
	v := trace.VerdictLatency()
	trace.SetVerdict(42 * time.Hour)
	if trace.VerdictLatency() != v {
		t.Fatal("verdict overwritten")
	}
}

func TestRingEvictionNewestFirst(t *testing.T) {
	tr := NewTracer(2)
	for i, op := range []string{"a", "b", "c"} {
		_, trace := tr.Start(context.Background(), op, "")
		trace.Record(Span{Name: op})
		trace.Finish()
		if tr.Total() != int64(i+1) {
			t.Fatalf("total = %d after %d finishes", tr.Total(), i+1)
		}
	}
	recent := tr.Recent(0)
	if len(recent) != 2 || recent[0].Op != "c" || recent[1].Op != "b" {
		got := make([]string, len(recent))
		for i, x := range recent {
			got[i] = x.Op
		}
		t.Fatalf("recent = %v, want [c b]", got)
	}
}

// collectHandler is a minimal slog.Handler capturing records.
type collectHandler struct {
	mu   sync.Mutex
	recs []slog.Record
}

func (h *collectHandler) Enabled(context.Context, slog.Level) bool { return true }
func (h *collectHandler) Handle(_ context.Context, r slog.Record) error {
	h.mu.Lock()
	h.recs = append(h.recs, r)
	h.mu.Unlock()
	return nil
}
func (h *collectHandler) WithAttrs([]slog.Attr) slog.Handler { return h }
func (h *collectHandler) WithGroup(string) slog.Handler      { return h }

func TestEventLogHandler(t *testing.T) {
	tr := NewTracer(4)
	h := &collectHandler{}
	tr.SetHandler(h)
	_, trace := tr.Start(context.Background(), "write", "/w")
	trace.Record(Span{Name: "block.put", Target: "c0", Outcome: SpanOK, Dur: time.Millisecond})
	trace.SetVerdict(500 * time.Microsecond)
	trace.Finish()
	trace.Finish() // idempotent: one event only

	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.recs) != 1 {
		t.Fatalf("event log got %d records, want 1", len(h.recs))
	}
	var op string
	h.recs[0].Attrs(func(a slog.Attr) bool {
		if a.Key == "op" {
			op = a.Value.String()
		}
		return true
	})
	if op != "write" {
		t.Fatalf("event op = %q", op)
	}
}
