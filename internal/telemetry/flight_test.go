package telemetry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// finished builds a finished trace of the given op whose Duration is
// (approximately, and at least) d, carrying nspans spans shaped by mutate.
func finished(op string, d time.Duration, nspans int, mutate func(*Span)) *Trace {
	t := &Trace{Op: op, Unit: "/u", Start: time.Now().Add(-d), ID: NewTraceID()}
	for i := 0; i < nspans; i++ {
		s := Span{Name: "meta.get", Target: "c0", Outcome: SpanOK}
		if mutate != nil {
			mutate(&s)
		}
		t.Record(s)
	}
	t.Finish()
	return t
}

func TestTraceIDRoundTrip(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a.IsZero() || b.IsZero() {
		t.Fatal("NewTraceID returned zero")
	}
	if a == b {
		t.Fatal("consecutive trace IDs collide")
	}
	if a.Short() == 0 {
		t.Fatal("Short() of a fresh ID is 0")
	}
	parsed, ok := ParseTraceID(a.String())
	if !ok || parsed != a {
		t.Fatalf("ParseTraceID(%q) = %v, %v", a.String(), parsed, ok)
	}
	for _, bad := range []string{"", "xyz", a.String()[:30], "00000000000000000000000000000000"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestTraceparent(t *testing.T) {
	id := NewTraceID()
	parsed, ok := ParseTraceparent(id.Traceparent())
	if !ok || parsed != id {
		t.Fatalf("round trip: %v, %v", parsed, ok)
	}
	got, ok := ParseTraceparent("00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01")
	if !ok || got.String() != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("w3c example: %v, %v", got, ok)
	}
	for _, bad := range []string{
		"",
		"00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7", // missing flags
		"ff-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01", // invalid version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace-id
		"00-0123-00f067aa0ba902b7-01", // short trace-id
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

// TestStartIDJoinsAndMints: StartID adopts the caller's identity, Start
// mints a fresh one, and both join an existing trace instead of nesting.
func TestStartIDJoinsAndMints(t *testing.T) {
	tr := NewTracer(4)
	want, _ := ParseTraceID("0123456789abcdef0123456789abcdef")
	ctx, outer := tr.StartID(context.Background(), "http.get", "/f", want)
	if outer == nil || outer.ID != want {
		t.Fatalf("StartID did not adopt the identity: %+v", outer)
	}
	if _, inner := tr.Start(ctx, "stat", "/f"); inner != nil {
		t.Fatal("nested Start did not join the live trace")
	}
	_, minted := tr.Start(context.Background(), "stat", "/f")
	if minted == nil || minted.ID.IsZero() {
		t.Fatal("Start did not mint an ID")
	}
}

// TestTraceSpanCap: a runaway trace stores at most maxTraceSpans spans and
// counts the overflow instead.
func TestTraceSpanCap(t *testing.T) {
	tr := finished("read", time.Millisecond, maxTraceSpans+44, nil)
	if got := tr.SpanCount(); got != maxTraceSpans {
		t.Fatalf("SpanCount = %d, want %d", got, maxTraceSpans)
	}
	if got := tr.Dropped(); got != 44 {
		t.Fatalf("Dropped = %d, want 44", got)
	}
}

// TestTraceFlags: error spans, breaker skips, view-change spans and
// operation-level errors all flag the trace for flight retention.
func TestTraceFlags(t *testing.T) {
	if finished("read", 0, 1, nil).Flagged() {
		t.Fatal("healthy trace flagged")
	}
	if !finished("read", 0, 1, func(s *Span) { s.Outcome = SpanError }).Flagged() {
		t.Fatal("error span did not flag")
	}
	if !finished("read", 0, 1, func(s *Span) { s.Outcome = SpanBreakerSkipped }).Flagged() {
		t.Fatal("breaker skip did not flag")
	}
	vc := finished("read", 0, 1, func(s *Span) { s.ViewChange = true })
	if !vc.Flagged() || !vc.CrossedViewChange() {
		t.Fatal("view-change span did not flag")
	}
	t2 := &Trace{Op: "read", Start: time.Now(), ID: NewTraceID()}
	t2.SetError(errors.New("boom"))
	t2.SetError(errors.New("later")) // first error sticks
	t2.Finish()
	if !t2.Flagged() || t2.Err() == nil || t2.Err().Error() != "boom" {
		t.Fatalf("SetError: flagged=%v err=%v", t2.Flagged(), t2.Err())
	}
}

// TestFlightSlowRetention: the recorder keeps the slowN slowest traces of a
// class, evicting the fastest exemplar when a slower one arrives, and
// ignores traces faster than everything retained.
func TestFlightSlowRetention(t *testing.T) {
	fr := NewFlightRecorder(3, 4, 0)
	for i := 1; i <= 6; i++ {
		fr.Offer(finished("read", time.Duration(i)*50*time.Millisecond, 2, nil))
	}
	slow := fr.Slowest("read")
	if len(slow) != 3 {
		t.Fatalf("retained %d slow traces, want 3", len(slow))
	}
	for i := 1; i < len(slow); i++ {
		if slow[i].Duration() > slow[i-1].Duration() {
			t.Fatal("Slowest not ordered slowest-first")
		}
	}
	// ~50ms is faster than all of the retained ~200/250/300ms exemplars.
	if slow[len(slow)-1].Duration() < 150*time.Millisecond {
		t.Fatalf("fast trace retained: %v", slow[len(slow)-1].Duration())
	}
	st := fr.Stats()
	if st.Seen != 6 || st.Retained != 3 || st.Evicted == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFlightFlaggedRetention: flagged traces are retained regardless of
// speed, FIFO-bounded per class, and reported newest first.
func TestFlightFlaggedRetention(t *testing.T) {
	fr := NewFlightRecorder(2, 3, 0)
	for i := 0; i < 5; i++ {
		tr := &Trace{Op: "write", Unit: fmt.Sprintf("/f%d", i), Start: time.Now(), ID: NewTraceID()}
		tr.Record(Span{Name: "smr.invoke", Outcome: SpanError})
		tr.Finish()
		fr.Offer(tr)
	}
	flagged := fr.Flagged("write")
	if len(flagged) != 3 {
		t.Fatalf("retained %d flagged traces, want 3", len(flagged))
	}
	if flagged[0].Unit != "/f4" || flagged[2].Unit != "/f2" {
		t.Fatalf("flagged order wrong: %s .. %s", flagged[0].Unit, flagged[2].Unit)
	}
	if len(fr.Slowest("write")) != 0 {
		t.Fatal("flagged traces leaked into the slow list")
	}
}

// TestFlightSpanBudget: the global span budget evicts the least interesting
// exemplars — fastest slow traces before flagged ones — and never the last
// retained trace.
func TestFlightSpanBudget(t *testing.T) {
	fr := NewFlightRecorder(8, 8, 30)
	for i := 1; i <= 4; i++ {
		fr.Offer(finished("read", time.Duration(i)*20*time.Millisecond, 9, nil)) // cost 10 each
	}
	if st := fr.Stats(); st.Spans > 30 {
		t.Fatalf("budget exceeded: %+v", st)
	}
	if got := len(fr.Slowest("read")); got != 3 {
		t.Fatalf("retained %d slow traces under budget, want 3", got)
	}
	// A flagged arrival pushes out slow exemplars, not other flagged ones.
	bad := finished("read", time.Millisecond, 9, func(s *Span) { s.Outcome = SpanError })
	fr.Offer(bad)
	if got := len(fr.Flagged("read")); got != 1 {
		t.Fatalf("flagged trace not retained under budget pressure: %d", got)
	}
	if st := fr.Stats(); st.Spans > 30 {
		t.Fatalf("budget exceeded after flagged admission: %+v", st)
	}
	// An oversized sole survivor is kept rather than evicted to nothing.
	tiny := NewFlightRecorder(4, 4, 3)
	tiny.Offer(finished("read", time.Millisecond, 20, nil))
	if tiny.Stats().Retained != 1 {
		t.Fatal("sole oversized trace was evicted")
	}
}

// TestFlightNilSafety: a nil recorder (flight disabled) no-ops everywhere.
func TestFlightNilSafety(t *testing.T) {
	var fr *FlightRecorder
	fr.Offer(finished("read", time.Millisecond, 1, nil))
	if fr.Classes() != nil || fr.Slowest("read") != nil || fr.Flagged("read") != nil {
		t.Fatal("nil recorder returned data")
	}
	if fr.Stats() != (FlightStats{}) {
		t.Fatal("nil recorder has stats")
	}
}

// TestTracerFeedsRecorder: traces finished through a tracer with a recorder
// installed land in the recorder, including their flight classification.
func TestTracerFeedsRecorder(t *testing.T) {
	tr := NewTracer(4)
	fr := NewFlightRecorder(0, 0, 0)
	tr.SetRecorder(fr)
	_, a := tr.Start(context.Background(), "read", "/ok")
	a.Finish()
	_, b := tr.Start(context.Background(), "read", "/bad")
	b.SetError(errors.New("backend down"))
	b.Finish()
	if got := fr.Stats().Retained; got != 2 {
		t.Fatalf("recorder retained %d traces, want 2", got)
	}
	flagged := fr.Flagged("read")
	if len(flagged) != 1 || flagged[0].Unit != "/bad" {
		t.Fatalf("flagged = %v", flagged)
	}
}

// TestHistogramExemplars: ObserveExemplar attaches the trace ID to the
// latency bucket it lands in; plain Observe leaves no exemplar; merge is
// last-write-wins on the non-zero side.
func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat")
	h.Observe(time.Millisecond)
	h.ObserveExemplar(time.Millisecond, 0xbeef)
	snap := reg.Snapshot()
	hs, ok := snap.Histograms["lat"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	found := false
	for i, e := range hs.Exemplars {
		if e == 0xbeef {
			found = true
			if hs.Buckets[i] == 0 {
				t.Fatal("exemplar attached to an empty bucket")
			}
		}
	}
	if !found {
		t.Fatalf("exemplar not attached: %v", hs.Exemplars)
	}
}
