package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	r.RegisterGauge("x", func() int64 { return 1 })
	s := r.Snapshot()
	if len(s.Counters) != 0 || s.Counter("x") != 0 || s.Total("x") != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total")
	g := r.Gauge("depth")
	h := r.Histogram("lat_ns")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(time.Duration(i) * time.Microsecond)
				// Concurrent get-or-create of the same name must converge on
				// one instrument.
				r.Counter("events_total").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 2*workers*per {
		t.Fatalf("counter = %d, want %d", got, 2*workers*per)
	}
	if g.Value() != 0 {
		t.Fatalf("gauge = %d, want 0", g.Value())
	}
	s := r.Snapshot()
	if s.Histograms["lat_ns"].Count != workers*per {
		t.Fatalf("histogram count = %d, want %d", s.Histograms["lat_ns"].Count, workers*per)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	// Bucket i holds nanosecond values of bit length i: [2^(i-1), 2^i).
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{255, 8},
		{256, 9},
		{time.Microsecond, 10}, // 1000ns → bits.Len(1000) = 10
		{time.Millisecond, 20}, // 1e6 ns
		{time.Second, 30},      // 1e9 ns
		{20 * time.Minute, 39}, // beyond the range: overflow bucket
		{-5 * time.Second, 0},  // clamped
		{1000 * time.Hour, histBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketIndex(int64(tc.d)); got != tc.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", tc.d, got, tc.want)
		}
		h.Observe(tc.d)
	}
	s := h.snapshot()
	if s.Count != int64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	// Each bucket's upper bound must be >= every value it holds and the
	// bounds must be strictly increasing.
	for i := 1; i < histBuckets-1; i++ {
		if BucketUpperNanos(i) <= BucketUpperNanos(i-1) {
			t.Fatalf("bucket bounds not increasing at %d", i)
		}
	}
	if q := s.Quantile(0.5); q <= 0 {
		t.Fatalf("median = %v, want > 0", q)
	}
}

func TestSnapshotMergeDeterminism(t *testing.T) {
	build := func(n int64) Snapshot {
		r := NewRegistry()
		r.Counter(Name("rpc_total", "cloud", "c0", "op", "get")).Add(n)
		r.Counter(Name("rpc_total", "cloud", "c1", "op", "put")).Add(2 * n)
		r.Gauge("depth").Set(n)
		r.RegisterGauge("queue", func() int64 { return 7 })
		h := r.Histogram(Name("rpc_latency_ns", "cloud", "c0"))
		for i := int64(0); i < n; i++ {
			h.Observe(time.Duration(i) * time.Millisecond)
		}
		return r.Snapshot()
	}
	a, b := build(3), build(5)

	ab, ba := a.Merge(b), b.Merge(a)
	j := func(s Snapshot) string {
		var buf bytes.Buffer
		if err := s.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if j(ab) != j(ba) {
		t.Fatalf("merge is not commutative:\n%s\nvs\n%s", j(ab), j(ba))
	}
	if got := ab.Counter(Name("rpc_total", "cloud", "c0", "op", "get")); got != 8 {
		t.Fatalf("merged counter = %d, want 8", got)
	}
	if got := ab.Total("rpc_total"); got != 8+6+10 {
		t.Fatalf("Total(rpc_total) = %d, want 24", got)
	}
	if ab.Histograms[Name("rpc_latency_ns", "cloud", "c0")].Count != 8 {
		t.Fatal("merged histogram lost observations")
	}
	// Repeated snapshots of an idle registry render identically.
	if j(a) != j(a) {
		t.Fatal("snapshot rendering not deterministic")
	}
	// And the merged snapshot round-trips through JSON.
	var back Snapshot
	if err := json.Unmarshal([]byte(j(ab)), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counter(Name("rpc_total", "cloud", "c0", "op", "get")) != 8 {
		t.Fatal("JSON round-trip lost a counter")
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter(Name("rpc_total", "cloud", "c0", "op", "get", "outcome", "ok")).Add(4)
	r.Gauge("uploader_queue_depth").Set(2)
	r.Histogram(Name("rpc_latency_ns", "cloud", "c0", "op", "get")).Observe(3 * time.Millisecond)
	r.Histogram("plain_hist").Observe(time.Millisecond)

	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`rpc_total{cloud="c0",op="get",outcome="ok"} 4`,
		`uploader_queue_depth 2`,
		`rpc_latency_ns_bucket{cloud="c0",op="get",le="+Inf"} 1`,
		`rpc_latency_ns_count{cloud="c0",op="get"} 1`,
		`plain_hist_bucket{le="+Inf"} 1`,
		"plain_hist_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "{}") {
		t.Fatalf("exposition contains empty label set:\n%s", out)
	}
}

func TestNameAndBase(t *testing.T) {
	n := Name("rpc_total", "cloud", "c0", "op", "get")
	if n != `rpc_total{cloud="c0",op="get"}` {
		t.Fatalf("Name = %s", n)
	}
	if Base(n) != "rpc_total" || Base("plain") != "plain" {
		t.Fatal("Base failed")
	}
}
