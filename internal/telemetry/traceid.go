package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"strings"
	"sync/atomic"
)

// TraceID identifies one trace across process boundaries: 16 bytes, hex
// encoded on the wire — the shape W3C Trace Context gives trace-id, so a
// gateway can join a caller's distributed trace and hand the ID back in a
// response header. The zero value is "no ID" (W3C reserves the all-zero
// trace-id as invalid).
type TraceID [16]byte

// Process-unique ID generation: the high half is fixed at process start
// (random when the OS provides it), the low half is a counter. NewTraceID
// is then two loads and an atomic add — no allocation, cheap enough for
// every traced operation.
var (
	traceIDHi uint64
	traceIDLo atomic.Uint64
)

func init() {
	var b [16]byte
	if _, err := rand.Read(b[:]); err == nil {
		traceIDHi = binary.BigEndian.Uint64(b[:8])
		traceIDLo.Store(binary.BigEndian.Uint64(b[8:]))
	}
	if traceIDHi == 0 {
		traceIDHi = 0x5cf5<<32 | 0x1d
	}
}

// NewTraceID returns a fresh process-unique trace ID.
func NewTraceID() TraceID {
	var id TraceID
	binary.BigEndian.PutUint64(id[:8], traceIDHi)
	binary.BigEndian.PutUint64(id[8:], traceIDLo.Add(1))
	return id
}

// IsZero reports whether the ID is unset (the invalid all-zero ID).
func (id TraceID) IsZero() bool { return id == TraceID{} }

// Short returns the low 8 bytes of the ID — the compact form histogram
// exemplars store (0 only for the zero ID, modulo a vanishing counter
// coincidence).
func (id TraceID) Short() uint64 { return binary.BigEndian.Uint64(id[8:]) }

// String returns the 32-character lowercase hex form.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// ParseTraceID parses the 32-character hex form. The all-zero ID is
// rejected (invalid per W3C Trace Context).
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 2*len(id) {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil || id.IsZero() {
		return TraceID{}, false
	}
	return id, true
}

// ParseTraceparent extracts the trace ID from a W3C traceparent header
// value: "00-<32 hex trace-id>-<16 hex parent-id>-<2 hex flags>". Future
// versions are accepted as long as the first two fields keep their shape
// (the spec requires that); version 0xff is reserved-invalid.
func ParseTraceparent(h string) (TraceID, bool) {
	parts := strings.SplitN(strings.TrimSpace(h), "-", 4)
	if len(parts) != 4 || len(parts[0]) != 2 || len(parts[2]) != 16 || len(parts[3]) < 2 {
		return TraceID{}, false
	}
	if parts[0] == "ff" {
		return TraceID{}, false
	}
	if _, err := hex.DecodeString(parts[0]); err != nil {
		return TraceID{}, false
	}
	return ParseTraceID(parts[1])
}

// Traceparent renders the ID as an outgoing traceparent header value,
// reusing the ID's low half as the parent span ID (this package tracks
// span parentage implicitly, by recording order).
func (id TraceID) Traceparent() string {
	return "00-" + id.String() + "-" + hex.EncodeToString(id[8:]) + "-01"
}
