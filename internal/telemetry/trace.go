package telemetry

import (
	"context"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// SpanOutcome classifies how one per-cloud attempt inside a quorum fan-out
// ended.
type SpanOutcome uint8

const (
	// SpanOK: the attempt completed and its answer was used (or usable).
	SpanOK SpanOutcome = iota
	// SpanError: the attempt failed with a provider error.
	SpanError
	// SpanCanceled: the attempt was cancelled — typically a straggler cut
	// down by a first-quorum-wins verdict.
	SpanCanceled
	// SpanBreakerSkipped: the attempt was never issued because the cloud's
	// breaker was open under a fail-fast policy.
	SpanBreakerSkipped
	// SpanSuppressed: a hedged attempt whose release never came — the
	// quorum verdict arrived while it waited in its hedge tier.
	SpanSuppressed
)

// String implements fmt.Stringer.
func (o SpanOutcome) String() string {
	switch o {
	case SpanOK:
		return "ok"
	case SpanError:
		return "error"
	case SpanCanceled:
		return "canceled"
	case SpanBreakerSkipped:
		return "breaker-skipped"
	case SpanSuppressed:
		return "suppressed"
	default:
		return "unknown"
	}
}

// Span is one attempt or phase in an operation's fan-out tree. Name is the
// span kind and must be a constant — data-plane RPCs ("meta.get",
// "block.get", "block.put", "chunk.get"), metadata-plane phases
// ("smr.invoke", "smr.batch", "shard.route", "shard.fanout") and gateway
// requests ("http.get", "http.head"); variable detail belongs in Target
// (the provider, shard or tenant the span worked against, or the batch
// flush trigger), never Sprintf'd into the name. Hedged marks attempts
// that launched from a hedge tier rather than the preferred set. Err (if
// any) is kept as an error value — formatting is deferred to export time
// so the hot path never builds strings.
//
// The metadata-plane fields are zero on data-plane spans: Wait is time
// spent queued before work started (a pipelining-window wait, a batch
// coalescing linger), Vote the first-reply-to-quorum latency of an smr
// invocation, Retries its retransmission count, Ops the number of
// operations a batch or fan-out carried, and ViewChange marks an
// invocation that was in flight across a replica-group view change.
type Span struct {
	Name    string
	Target  string
	Start   time.Time
	Dur     time.Duration
	Outcome SpanOutcome
	Hedged  bool
	Err     error

	Wait       time.Duration
	Vote       time.Duration
	Retries    int
	Ops        int
	ViewChange bool
}

// describe renders the span for the event log and JSON export.
func (s Span) describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s %v %s", s.Name, s.Target, s.Dur, s.Outcome)
	if s.Hedged {
		b.WriteString(" hedged")
	}
	if s.Wait > 0 {
		fmt.Fprintf(&b, " wait=%v", s.Wait)
	}
	if s.Vote > 0 {
		fmt.Fprintf(&b, " vote=%v", s.Vote)
	}
	if s.Retries > 0 {
		fmt.Fprintf(&b, " retries=%d", s.Retries)
	}
	if s.Ops > 0 {
		fmt.Fprintf(&b, " ops=%d", s.Ops)
	}
	if s.ViewChange {
		b.WriteString(" view-change")
	}
	if s.Err != nil {
		b.WriteString(" err=" + s.Err.Error())
	}
	return b.String()
}

// traceKey carries the active *Trace on a context (same idiom as
// internal/iopolicy's policy key).
type traceKey struct{}

// FromContext returns the trace the context carries, or nil. All Trace
// methods are nil-safe, so call sites never branch.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// inlineSpans bounds the per-trace span storage that comes for free with
// the Trace allocation. A hedged read against 4 clouds records ~8 spans
// (metadata quorum + block fetch, winners and suppressed alike); 12 leaves
// room for retries before the slice spills to the heap.
const inlineSpans = 12

// maxTraceSpans caps the spans one trace retains. Without a cap a single
// trace can grow without bound — a metadata storm funnelling a thousand
// sessions' batches through one gateway request would retain every span —
// and the flight recorder's memory accounting would be meaningless. Spans
// past the cap are counted (Dropped), not stored.
const maxTraceSpans = 256

// Flag bits summarizing what a trace's spans reported; the flight
// recorder's retention test reads them without rescanning the spans.
const (
	flagError uint8 = 1 << iota
	flagBreakerSkipped
	flagViewChange
)

// Trace is the record of one client operation's fan-out: which clouds or
// shards were tried for each phase, how long each attempt took, who won,
// who was cancelled or never released, and how long the quorum verdict
// took. A Trace is created by Tracer.Start, carried on the context through
// the dispatch layers, and finished (and exported) when the operation
// returns. A nil *Trace is a disabled trace: every method no-ops.
type Trace struct {
	// Op is the operation kind ("read", "write", "stat", "http.get", ...).
	Op string
	// Unit names the object the operation worked on.
	Unit string
	// Start is when the operation began.
	Start time.Time
	// ID is the trace's wire identity (W3C trace-id shaped). Set by
	// Tracer.Start; a gateway joining a caller's distributed trace carries
	// the caller's ID here.
	ID TraceID

	tracer *Tracer

	mu      sync.Mutex
	end     time.Time
	verdict time.Duration
	spans   []Span
	inline  [inlineSpans]Span
	dropped int
	flags   uint8
	err     error
	done    bool
}

// Record appends one attempt span. Records arriving after Finish — e.g. a
// straggler goroutine that lost the quorum race and unwound late — are
// dropped, so an exported trace never mutates and stragglers cannot leak
// spans into the ring. Past maxTraceSpans the span is counted but not
// stored (see Dropped), bounding the memory of one trace.
func (t *Trace) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		switch s.Outcome {
		case SpanError:
			t.flags |= flagError
		case SpanBreakerSkipped:
			t.flags |= flagBreakerSkipped
		}
		if s.ViewChange {
			t.flags |= flagViewChange
		}
		if len(t.spans) >= maxTraceSpans {
			t.dropped++
		} else {
			if t.spans == nil {
				t.spans = t.inline[:0]
			}
			t.spans = append(t.spans, s)
		}
	}
	t.mu.Unlock()
}

// SetError records the operation-level error (the one the client saw, as
// opposed to per-attempt span errors). Only the first non-nil error
// sticks; errors arriving after Finish are dropped like late spans. An
// errored trace is flight-recorder flagged even when no individual span
// failed.
func (t *Trace) SetError(err error) {
	if t == nil || err == nil {
		return
	}
	t.mu.Lock()
	if !t.done && t.err == nil {
		t.err = err
		t.flags |= flagError
	}
	t.mu.Unlock()
}

// Err returns the recorded operation-level error, if any.
func (t *Trace) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Dropped returns how many spans were discarded past the per-trace cap.
func (t *Trace) Dropped() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// SpanCount returns the number of retained spans.
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Flagged reports whether the trace is fault evidence: an errored or
// breaker-skipped attempt, a view-change-crossing invocation, or an
// operation-level error. The flight recorder retains every flagged trace
// regardless of how fast it was.
func (t *Trace) Flagged() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flags != 0
}

// CrossedViewChange reports whether any recorded span was in flight across
// a replica-group view change.
func (t *Trace) CrossedViewChange() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flags&flagViewChange != 0
}

// ExemplarID returns the compact (low 8 bytes) form of the trace's ID for
// histogram exemplar attachment; 0 on a nil trace, which ObserveExemplar
// treats as "no exemplar".
func (t *Trace) ExemplarID() uint64 {
	if t == nil {
		return 0
	}
	return t.ID.Short()
}

// SetVerdict records the quorum verdict latency — how long until enough
// answers were in to decide the operation. Only the first call sticks
// (nested phases each race to report; the outermost verdict is the one
// that matters for the client).
func (t *Trace) SetVerdict(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done && t.verdict == 0 {
		t.verdict = d
	}
	t.mu.Unlock()
}

// Finish seals the trace and hands it to its tracer's ring buffer and
// event log. Idempotent; safe on nil.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.end = time.Now()
	t.mu.Unlock()
	if t.tracer != nil {
		t.tracer.record(t)
	}
}

// Duration returns the operation's total wall time (0 until finished).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		return 0
	}
	return t.end.Sub(t.Start)
}

// VerdictLatency returns the recorded quorum verdict latency.
func (t *Trace) VerdictLatency() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.verdict
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Describe renders the trace as one line per span, for logs and debugging.
func (t *Trace) Describe() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.spans))
	for i, s := range t.spans {
		out[i] = s.describe()
	}
	return out
}

// Tracer owns a fixed ring buffer of completed traces and an optional
// structured event log. A nil *Tracer is disabled: Start returns the
// context unchanged and a nil trace.
type Tracer struct {
	mu       sync.Mutex
	ring     []*Trace
	next     int
	total    int64
	handler  slog.Handler
	recorder *FlightRecorder
}

// NewTracer creates a tracer keeping the last capacity completed traces
// (capacity <= 0 means 64).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{ring: make([]*Trace, capacity)}
}

// SetHandler installs a slog handler that receives one record per
// completed trace (the structured event log). nil disables it. The
// handler runs synchronously on the finishing goroutine; keep it cheap or
// buffer inside it.
func (tr *Tracer) SetHandler(h slog.Handler) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.handler = h
	tr.mu.Unlock()
}

// SetRecorder installs a flight recorder that is offered every finished
// trace: where the ring keeps the most recent traces, the recorder keeps
// the *exemplary* ones (slowest, errored, view-change-crossing). nil
// disables it.
func (tr *Tracer) SetRecorder(fr *FlightRecorder) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.recorder = fr
	tr.mu.Unlock()
}

// Start begins a trace for one operation and returns a context carrying
// it. When the context already carries a live trace — a chunk fetch inside
// a streamed read, say — Start joins it instead: the inner phase's spans
// land on the parent and the returned trace is nil (its Finish is a
// no-op), so exactly one trace per client operation reaches the ring.
func (tr *Tracer) Start(ctx context.Context, op, unit string) (context.Context, *Trace) {
	return tr.StartID(ctx, op, unit, TraceID{})
}

// StartID is Start with a caller-supplied trace identity — how a gateway
// continues the distributed trace a client's traceparent header named. A
// zero id mints a fresh one.
func (tr *Tracer) StartID(ctx context.Context, op, unit string, id TraceID) (context.Context, *Trace) {
	if tr == nil {
		return ctx, nil
	}
	if FromContext(ctx) != nil {
		return ctx, nil
	}
	if id.IsZero() {
		id = NewTraceID()
	}
	t := &Trace{Op: op, Unit: unit, Start: time.Now(), ID: id, tracer: tr}
	return context.WithValue(ctx, traceKey{}, t), t
}

// record files a finished trace into the ring, the flight recorder and the
// event log.
func (tr *Tracer) record(t *Trace) {
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	tr.total++
	h := tr.handler
	fr := tr.recorder
	tr.mu.Unlock()
	fr.Offer(t)
	if h == nil {
		return
	}
	rec := slog.NewRecord(t.end, slog.LevelInfo, "scfs.trace", 0)
	rec.AddAttrs(
		slog.String("trace", t.ID.String()),
		slog.String("op", t.Op),
		slog.String("unit", t.Unit),
		slog.Duration("dur", t.Duration()),
		slog.Duration("verdict", t.VerdictLatency()),
		slog.Any("spans", t.Describe()),
	)
	// The trace is already finished when it is logged; slog.Handler wants a
	// ctx only for handler-internal values, and no caller remains to cancel.
	//scfslint:ignore ctxdiscipline post-completion log emission has no caller context
	_ = h.Handle(context.Background(), rec)
}

// Recent returns up to n completed traces, newest first (n <= 0 means
// all). Nil-safe.
func (tr *Tracer) Recent(n int) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	size := len(tr.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= size && len(out) < n; i++ {
		t := tr.ring[(tr.next-i+size)%size]
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}

// Total returns how many traces have completed over the tracer's lifetime
// (including ones the ring has since evicted).
func (tr *Tracer) Total() int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}
