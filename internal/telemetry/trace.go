package telemetry

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// SpanOutcome classifies how one per-cloud attempt inside a quorum fan-out
// ended.
type SpanOutcome uint8

const (
	// SpanOK: the attempt completed and its answer was used (or usable).
	SpanOK SpanOutcome = iota
	// SpanError: the attempt failed with a provider error.
	SpanError
	// SpanCanceled: the attempt was cancelled — typically a straggler cut
	// down by a first-quorum-wins verdict.
	SpanCanceled
	// SpanBreakerSkipped: the attempt was never issued because the cloud's
	// breaker was open under a fail-fast policy.
	SpanBreakerSkipped
	// SpanSuppressed: a hedged attempt whose release never came — the
	// quorum verdict arrived while it waited in its hedge tier.
	SpanSuppressed
)

// String implements fmt.Stringer.
func (o SpanOutcome) String() string {
	switch o {
	case SpanOK:
		return "ok"
	case SpanError:
		return "error"
	case SpanCanceled:
		return "canceled"
	case SpanBreakerSkipped:
		return "breaker-skipped"
	case SpanSuppressed:
		return "suppressed"
	default:
		return "unknown"
	}
}

// Span is one per-cloud attempt in an operation's fan-out tree. Name is
// the attempt kind ("meta.get", "block.get", "block.put", "chunk.get"),
// Cloud the provider it targeted. Hedged marks attempts that launched from
// a hedge tier rather than the preferred set. Err (if any) is kept as an
// error value — formatting is deferred to export time so the hot path
// never builds strings.
type Span struct {
	Name    string
	Cloud   string
	Start   time.Time
	Dur     time.Duration
	Outcome SpanOutcome
	Hedged  bool
	Err     error
}

// describe renders the span for the event log and JSON export.
func (s Span) describe() string {
	h := ""
	if s.Hedged {
		h = " hedged"
	}
	e := ""
	if s.Err != nil {
		e = " err=" + s.Err.Error()
	}
	return fmt.Sprintf("%s %s %v %s%s%s", s.Name, s.Cloud, s.Dur, s.Outcome, h, e)
}

// traceKey carries the active *Trace on a context (same idiom as
// internal/iopolicy's policy key).
type traceKey struct{}

// FromContext returns the trace the context carries, or nil. All Trace
// methods are nil-safe, so call sites never branch.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// inlineSpans bounds the per-trace span storage that comes for free with
// the Trace allocation. A hedged read against 4 clouds records ~8 spans
// (metadata quorum + block fetch, winners and suppressed alike); 12 leaves
// room for retries before the slice spills to the heap.
const inlineSpans = 12

// Trace is the record of one client operation's quorum fan-out: which
// clouds were tried for each phase, how long each attempt took, who won,
// who was cancelled or never released, and how long the quorum verdict
// took. A Trace is created by Tracer.Start, carried on the context through
// the dispatch layers, and finished (and exported) when the operation
// returns. A nil *Trace is a disabled trace: every method no-ops.
type Trace struct {
	// Op is the operation kind ("read", "write", "write.stream", "delete").
	Op string
	// Unit names the object the operation worked on.
	Unit string
	// Start is when the operation began.
	Start time.Time

	tracer *Tracer

	mu      sync.Mutex
	end     time.Time
	verdict time.Duration
	spans   []Span
	inline  [inlineSpans]Span
	done    bool
}

// Record appends one attempt span. Records arriving after Finish — e.g. a
// straggler goroutine that lost the quorum race and unwound late — are
// dropped, so an exported trace never mutates and stragglers cannot leak
// spans into the ring.
func (t *Trace) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done {
		if t.spans == nil {
			t.spans = t.inline[:0]
		}
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// SetVerdict records the quorum verdict latency — how long until enough
// answers were in to decide the operation. Only the first call sticks
// (nested phases each race to report; the outermost verdict is the one
// that matters for the client).
func (t *Trace) SetVerdict(d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.done && t.verdict == 0 {
		t.verdict = d
	}
	t.mu.Unlock()
}

// Finish seals the trace and hands it to its tracer's ring buffer and
// event log. Idempotent; safe on nil.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.done {
		t.mu.Unlock()
		return
	}
	t.done = true
	t.end = time.Now()
	t.mu.Unlock()
	if t.tracer != nil {
		t.tracer.record(t)
	}
}

// Duration returns the operation's total wall time (0 until finished).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.end.IsZero() {
		return 0
	}
	return t.end.Sub(t.Start)
}

// VerdictLatency returns the recorded quorum verdict latency.
func (t *Trace) VerdictLatency() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.verdict
}

// Spans returns a copy of the recorded spans.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	return out
}

// Describe renders the trace as one line per span, for logs and debugging.
func (t *Trace) Describe() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.spans))
	for i, s := range t.spans {
		out[i] = s.describe()
	}
	return out
}

// Tracer owns a fixed ring buffer of completed traces and an optional
// structured event log. A nil *Tracer is disabled: Start returns the
// context unchanged and a nil trace.
type Tracer struct {
	mu      sync.Mutex
	ring    []*Trace
	next    int
	total   int64
	handler slog.Handler
}

// NewTracer creates a tracer keeping the last capacity completed traces
// (capacity <= 0 means 64).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 64
	}
	return &Tracer{ring: make([]*Trace, capacity)}
}

// SetHandler installs a slog handler that receives one record per
// completed trace (the structured event log). nil disables it. The
// handler runs synchronously on the finishing goroutine; keep it cheap or
// buffer inside it.
func (tr *Tracer) SetHandler(h slog.Handler) {
	if tr == nil {
		return
	}
	tr.mu.Lock()
	tr.handler = h
	tr.mu.Unlock()
}

// Start begins a trace for one operation and returns a context carrying
// it. When the context already carries a live trace — a chunk fetch inside
// a streamed read, say — Start joins it instead: the inner phase's spans
// land on the parent and the returned trace is nil (its Finish is a
// no-op), so exactly one trace per client operation reaches the ring.
func (tr *Tracer) Start(ctx context.Context, op, unit string) (context.Context, *Trace) {
	if tr == nil {
		return ctx, nil
	}
	if FromContext(ctx) != nil {
		return ctx, nil
	}
	t := &Trace{Op: op, Unit: unit, Start: time.Now(), tracer: tr}
	return context.WithValue(ctx, traceKey{}, t), t
}

// record files a finished trace into the ring and the event log.
func (tr *Tracer) record(t *Trace) {
	tr.mu.Lock()
	tr.ring[tr.next] = t
	tr.next = (tr.next + 1) % len(tr.ring)
	tr.total++
	h := tr.handler
	tr.mu.Unlock()
	if h == nil {
		return
	}
	rec := slog.NewRecord(t.end, slog.LevelInfo, "scfs.trace", 0)
	rec.AddAttrs(
		slog.String("op", t.Op),
		slog.String("unit", t.Unit),
		slog.Duration("dur", t.Duration()),
		slog.Duration("verdict", t.VerdictLatency()),
		slog.Any("spans", t.Describe()),
	)
	// The trace is already finished when it is logged; slog.Handler wants a
	// ctx only for handler-internal values, and no caller remains to cancel.
	//scfslint:ignore ctxdiscipline post-completion log emission has no caller context
	_ = h.Handle(context.Background(), rec)
}

// Recent returns up to n completed traces, newest first (n <= 0 means
// all). Nil-safe.
func (tr *Tracer) Recent(n int) []*Trace {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	size := len(tr.ring)
	if n <= 0 || n > size {
		n = size
	}
	out := make([]*Trace, 0, n)
	for i := 1; i <= size && len(out) < n; i++ {
		t := tr.ring[(tr.next-i+size)%size]
		if t == nil {
			break
		}
		out = append(out, t)
	}
	return out
}

// Total returns how many traces have completed over the tracer's lifetime
// (including ones the ring has since evicted).
func (tr *Tracer) Total() int64 {
	if tr == nil {
		return 0
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return tr.total
}
