package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"scfs/internal/cloud"
)

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{cloud.ErrUnavailable, true},
		{cloud.ErrThrottled, true},
		{fmt.Errorf("s3: %w", cloud.ErrUnavailable), true},
		{fmt.Errorf("s3: %w", cloud.ErrThrottled), true},
		{cloud.ErrNotFound, false},
		{cloud.ErrAccessDenied, false},
		{cloud.ErrCorrupted, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{fmt.Errorf("op: %w", context.Canceled), false},
		{errors.New("mystery"), false},
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if !Ignorable(context.Canceled) || !Ignorable(fmt.Errorf("x: %w", context.DeadlineExceeded)) {
		t.Fatal("context errors must be ignorable")
	}
	if Ignorable(cloud.ErrUnavailable) {
		t.Fatal("provider errors are not ignorable")
	}
}

func TestBackoffDelayBounds(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}
	caps := []time.Duration{10, 20, 40, 80, 80, 80} // ms
	for attempt, capMs := range caps {
		cap := capMs * time.Millisecond
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt)
			if d < 0 || d > cap {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, cap)
			}
		}
	}
}

func TestBackoffDelayJitters(t *testing.T) {
	b := Backoff{Base: time.Second}
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[b.Delay(3)] = true
	}
	if len(seen) < 2 {
		t.Fatal("full jitter produced a constant delay")
	}
}

func TestBackoffZeroBase(t *testing.T) {
	var b Backoff
	for attempt := 0; attempt < 4; attempt++ {
		if d := b.Delay(attempt); d != 0 {
			t.Fatalf("zero backoff slept %v", d)
		}
	}
}

func TestBackoffSleepHonoursContext(t *testing.T) {
	b := Backoff{Base: time.Hour, Max: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := b.Sleep(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on cancelled ctx = %v, want Canceled", err)
	}
}

func TestRetryPolicyZeroValueSingleAttempt(t *testing.T) {
	var p RetryPolicy
	if p.Enabled() {
		t.Fatal("zero policy must disable retries")
	}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return cloud.ErrUnavailable
	}, nil)
	if calls != 1 || !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("calls=%d err=%v, want one attempt returning the error", calls, err)
	}
}

func TestRetryPolicyRetriesTransient(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 4}
	calls := 0
	var seen []error
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return cloud.ErrThrottled
		}
		return nil
	}, func(_ int, e error) { seen = append(seen, e) })
	if err != nil || calls != 3 {
		t.Fatalf("calls=%d err=%v, want success on attempt 3", calls, err)
	}
	if len(seen) != 3 || seen[2] != nil {
		t.Fatalf("observer saw %v, want three outcomes ending nil", seen)
	}
}

func TestRetryPolicyStopsOnPermanent(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 5}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return cloud.ErrNotFound
	}, nil)
	if calls != 1 || !errors.Is(err, cloud.ErrNotFound) {
		t.Fatalf("calls=%d err=%v, want no retry of a permanent error", calls, err)
	}
}

func TestRetryPolicyExhaustsBudget(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 3}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return cloud.ErrUnavailable
	}, nil)
	if calls != 3 || !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("calls=%d err=%v, want the budget spent and the last error returned", calls, err)
	}
}

func TestRetryPolicyStopsWhenContextEnds(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, Backoff: Backoff{Base: time.Millisecond}}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := p.Do(ctx, func(context.Context) error {
		calls++
		cancel()
		return cloud.ErrUnavailable
	}, nil)
	if calls != 1 {
		t.Fatalf("retried %d times past a dead context", calls)
	}
	if !errors.Is(err, cloud.ErrUnavailable) {
		t.Fatalf("err = %v, want the RPC error, not the context's", err)
	}
}

func TestBoardOpensAfterThreshold(t *testing.T) {
	b := NewBoard(2, BreakerPolicy{FailureThreshold: 3, Cooldown: time.Minute})
	now := time.Unix(0, 0)
	b.SetNow(func() time.Time { return now })

	for i := 0; i < 2; i++ {
		b.Record(0, 0, cloud.ErrUnavailable)
	}
	if b.State(0, 0) != BreakerClosed {
		t.Fatal("opened below threshold")
	}
	b.Record(0, 0, cloud.ErrUnavailable)
	if b.State(0, 0) != BreakerOpen {
		t.Fatal("did not open at threshold")
	}
	if !b.Suspected(0, 0) {
		t.Fatal("open breaker must be suspected")
	}
	if b.Suspected(0, 1) || b.Suspected(1, 0) {
		t.Fatal("failure leaked into another (cloud, class)")
	}
	if b.Admit(0, 0) {
		t.Fatal("open breaker admitted a request before cooldown")
	}
}

func TestBoardSuccessResetsFailureCount(t *testing.T) {
	b := NewBoard(1, BreakerPolicy{FailureThreshold: 3})
	b.Record(0, 0, cloud.ErrUnavailable)
	b.Record(0, 0, cloud.ErrUnavailable)
	b.Record(0, 0, nil)
	b.Record(0, 0, cloud.ErrUnavailable)
	b.Record(0, 0, cloud.ErrUnavailable)
	if b.State(0, 0) != BreakerClosed {
		t.Fatal("success did not reset the failure streak")
	}
}

func TestBoardPermanentErrorsAreHealthy(t *testing.T) {
	b := NewBoard(1, BreakerPolicy{FailureThreshold: 2})
	for i := 0; i < 10; i++ {
		b.Record(0, 0, cloud.ErrNotFound)
	}
	if b.State(0, 0) != BreakerClosed {
		t.Fatal("not-found responses opened the breaker")
	}
}

func TestBoardIgnoresContextErrors(t *testing.T) {
	b := NewBoard(1, BreakerPolicy{FailureThreshold: 2})
	for i := 0; i < 10; i++ {
		b.Record(0, 0, context.Canceled)
		b.Record(0, 0, fmt.Errorf("get: %w", context.DeadlineExceeded))
	}
	if b.State(0, 0) != BreakerClosed {
		t.Fatal("quorum cancellations opened the breaker")
	}
}

func TestBoardHalfOpenProbeCycle(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBoard(1, BreakerPolicy{FailureThreshold: 1, Cooldown: time.Second})
	b.SetNow(func() time.Time { return now })

	b.Record(0, 0, cloud.ErrUnavailable)
	if b.State(0, 0) != BreakerOpen {
		t.Fatal("did not open")
	}

	now = now.Add(2 * time.Second)
	if b.Suspected(0, 0) {
		t.Fatal("still suspected after cooldown")
	}
	if !b.Admit(0, 0) {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Admit(0, 0) {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}

	// Probe fails: back to open with a fresh cooldown.
	b.Record(0, 0, cloud.ErrUnavailable)
	if b.State(0, 0) != BreakerOpen || b.Admit(0, 0) {
		t.Fatal("failed probe did not reopen the breaker")
	}

	// Next cooldown, successful probe: closed for good.
	now = now.Add(2 * time.Second)
	if !b.Admit(0, 0) {
		t.Fatal("second probe refused")
	}
	b.Record(0, 0, nil)
	if b.State(0, 0) != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.Admit(0, 0) || !b.Admit(0, 0) {
		t.Fatal("closed breaker must admit freely")
	}
}

func TestBoardDemoteStable(t *testing.T) {
	now := time.Unix(0, 0)
	b := NewBoard(4, BreakerPolicy{FailureThreshold: 1, Cooldown: time.Hour})
	b.SetNow(func() time.Time { return now })
	b.Record(1, 0, cloud.ErrUnavailable)
	b.Record(3, 0, cloud.ErrUnavailable)

	got := b.Demote([]int{3, 2, 1, 0}, 0)
	want := []int{2, 0, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Demote = %v, want %v", got, want)
		}
	}

	// The other class is untouched.
	got = b.Demote([]int{3, 2, 1, 0}, 1)
	for i, w := range []int{3, 2, 1, 0} {
		if got[i] != w {
			t.Fatalf("class 1 Demote = %v, want unchanged", got)
		}
	}
}

func TestNilBoardIsHealthy(t *testing.T) {
	b := NewBoard(4, BreakerPolicy{Disable: true})
	if b != nil {
		t.Fatal("disabled policy must yield a nil board")
	}
	b.Record(0, 0, cloud.ErrUnavailable)
	if b.Suspected(0, 0) || !b.Admit(0, 0) || b.State(0, 0) != BreakerClosed {
		t.Fatal("nil board must report healthy")
	}
	order := []int{2, 1, 0}
	got := b.Demote(order, 0)
	for i, w := range order {
		if got[i] != w {
			t.Fatal("nil board must not reorder")
		}
	}
}

func TestBreakerStateString(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" || BreakerHalfOpen.String() != "half-open" {
		t.Fatal("unexpected state names")
	}
}

// TestBoardObserverSeesTransitions: the telemetry hook fires once per real
// state change — open on threshold, half-open on cooldown, closed on the
// successful probe — and never for a no-op Record.
func TestBoardObserverSeesTransitions(t *testing.T) {
	now := time.Unix(100, 0)
	b := NewBoard(2, BreakerPolicy{FailureThreshold: 2, Cooldown: time.Second})
	b.SetNow(func() time.Time { return now })
	type tr struct {
		cloud, class int
		from, to     BreakerState
	}
	var seen []tr
	b.SetObserver(func(cloud, class int, from, to BreakerState) {
		seen = append(seen, tr{cloud, class, from, to})
	})

	fail := fmt.Errorf("down: %w", cloud.ErrUnavailable)
	b.Record(1, 0, nil)  // closed -> closed: no event
	b.Record(1, 0, fail) // below threshold: no event
	b.Record(1, 0, fail) // threshold: closed -> open
	now = now.Add(2 * time.Second)
	if !b.Admit(1, 0) { // cooldown elapsed: open -> half-open, probe admitted
		t.Fatal("probe not admitted after cooldown")
	}
	b.Record(1, 0, nil) // probe succeeded: half-open -> closed

	want := []tr{
		{1, 0, BreakerClosed, BreakerOpen},
		{1, 0, BreakerOpen, BreakerHalfOpen},
		{1, 0, BreakerHalfOpen, BreakerClosed},
	}
	if len(seen) != len(want) {
		t.Fatalf("observer saw %d transitions %v, want %d", len(seen), seen, len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("transition %d = %+v, want %+v", i, seen[i], want[i])
		}
	}

	// A nil board accepts an observer without blowing up.
	var nilBoard *Board
	nilBoard.SetObserver(func(int, int, BreakerState, BreakerState) {})
}
