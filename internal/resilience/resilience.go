// Package resilience is the per-cloud fault-handling layer of SCFS: error
// classification (which failures are worth retrying), retry budgets with
// exponential backoff and full jitter, and a per-(cloud, operation-class)
// circuit breaker that remembers which providers are misbehaving.
//
// The quorum protocols in internal/depsky tolerate f arbitrary faults by
// construction, but before this layer they treated every failure the same
// way: an RPC failed once and the fan-out moved on, or — worse — a caller
// retried a permanently failing request blindly. Real providers misbehave
// in patterns (throttling bursts, minutes-long outages, gray slowness), and
// a dispatch layer that remembers the pattern can stop paying for it:
// transient errors retry with backoff inside their budget, suspected clouds
// are demoted out of preferred sets and probed instead of hammered, and a
// recovered provider re-enters rotation after one successful probe.
package resilience

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"scfs/internal/cloud"
)

// Retryable reports whether err describes a transient provider condition
// worth retrying: outages pass and throttles clear, but a missing object
// stays missing and a denied ACL stays denied no matter how often the same
// request is repeated. Context errors are never retryable — the caller's
// context governs the operation, and retrying a cancelled request would
// outlive the caller's interest in it.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return errors.Is(err, cloud.ErrUnavailable) || errors.Is(err, cloud.ErrThrottled)
}

// Ignorable reports whether err says nothing about the provider's health:
// context errors are the caller's doing (quorum verdicts cancel straggler
// RPCs constantly — charging those to the cloud would open every breaker
// on a healthy deployment).
func Ignorable(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Backoff computes retry delays: exponential growth from Base by Factor,
// capped at Max, with full jitter (each delay is uniform in [0, d]).
// Full jitter is the variant that best de-correlates a thundering herd of
// retriers — exactly the failure mode of a quorum system where every client
// notices an outage at the same moment.
type Backoff struct {
	// Base is the cap of the first delay. Zero yields zero delays (tests).
	Base time.Duration
	// Max caps the exponential growth; 0 means 16x Base.
	Max time.Duration
	// Factor is the per-attempt growth; <= 1 means 2.
	Factor float64
}

// jitterNow draws the full-jitter delay for a cap d. Package-level so tests
// can pin it; the default is uniform in [0, d].
var jitterNow = func(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	return time.Duration(rand.Int63n(int64(d) + 1))
}

// Delay returns the jittered delay before retry attempt number `attempt`
// (0 = the delay after the first failure).
func (b Backoff) Delay(attempt int) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	factor := b.Factor
	if factor <= 1 {
		factor = 2
	}
	max := b.Max
	if max <= 0 {
		max = 16 * b.Base
	}
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= float64(max) {
			d = float64(max)
			break
		}
	}
	if time.Duration(d) > max {
		d = float64(max)
	}
	return jitterNow(time.Duration(d))
}

// Sleep pauses for the attempt's jittered delay, returning ctx.Err() early
// when the context is cancelled: a retry loop never outlives its caller.
func (b Backoff) Sleep(ctx context.Context, attempt int) error {
	d := b.Delay(attempt)
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// RetryPolicy is a retry budget: how many attempts one RPC may spend and
// how the delays between them grow. The zero value disables retries (one
// attempt, the pre-resilience behaviour).
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// 0 and 1 both mean a single attempt.
	MaxAttempts int
	// Backoff shapes the delays between attempts.
	Backoff Backoff
}

// Enabled reports whether the policy grants any retries.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// Attempts returns the effective attempt budget (at least 1).
func (p RetryPolicy) Attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// Do runs fn under the retry policy: transient failures are retried with
// jittered backoff until the budget or the context runs out; permanent
// failures and successes return immediately. The per-attempt observer (nil
// ok) sees every outcome with its attempt number (0 = the first try) — the
// breaker layer uses it to record attempts individually rather than only
// the final verdict, and the telemetry layer to count retries exactly.
func (p RetryPolicy) Do(ctx context.Context, fn func(context.Context) error, observe func(int, error)) error {
	attempts := p.Attempts()
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		err = fn(ctx)
		if observe != nil {
			observe(attempt, err)
		}
		if err == nil || !Retryable(err) {
			return err
		}
		if attempt == attempts-1 {
			break
		}
		if serr := p.Backoff.Sleep(ctx, attempt); serr != nil {
			return err // the caller's context ended: report the RPC error
		}
	}
	return err
}

// --- circuit breaker ---

// BreakerState is the classic three-state machine of one breaker.
type BreakerState int

const (
	// BreakerClosed is normal operation: requests flow, failures count.
	BreakerClosed BreakerState = iota
	// BreakerOpen means the cloud is suspected: requests should be demoted
	// or skipped until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits probe requests after the cooldown; one success
	// closes the breaker, one transient failure reopens it.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerPolicy tunes the per-(cloud, op-class) breakers of a Board.
type BreakerPolicy struct {
	// Disable runs the deployment without breakers (every cloud is always
	// considered healthy).
	Disable bool
	// FailureThreshold is how many consecutive transient failures open the
	// breaker; <= 0 means 4.
	FailureThreshold int
	// Cooldown is how long an open breaker holds before admitting a probe;
	// <= 0 means 2s.
	Cooldown time.Duration
}

func (p BreakerPolicy) threshold() int {
	if p.FailureThreshold <= 0 {
		return 4
	}
	return p.FailureThreshold
}

func (p BreakerPolicy) cooldown() time.Duration {
	if p.Cooldown <= 0 {
		return 2 * time.Second
	}
	return p.Cooldown
}

// breaker is one (cloud, op-class) state machine. Guarded by the Board's
// mutex.
type breaker struct {
	state    BreakerState
	failures int       // consecutive transient failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

// Board is the health scoreboard of one deployment: a circuit breaker per
// (cloud index, operation class). It is fed the outcome of every per-cloud
// RPC and answers the dispatch-time questions: is this cloud suspected for
// this class of work, and should a request be admitted to probe it. Safe
// for concurrent use.
//
// A Board never decides availability by itself — the quorum layer keeps
// contacting suspected clouds when it has no cheaper way to assemble a
// quorum. What the board changes is priority (suspected clouds are demoted
// to the last hedge tier) and spend (retry budgets stop being burned on a
// cloud that is failing everything).
type Board struct {
	pol BreakerPolicy
	now func() time.Time

	mu       sync.Mutex
	breakers [][]breaker // [cloud][class]
	obs      func(cloud, class int, from, to BreakerState)
}

// classCount is how many operation classes the board distinguishes. It
// mirrors iopolicy's OpGet/OpPut split without importing the package (the
// dependency points the other way: dispatch imports both).
const classCount = 2

// NewBoard creates a board for n clouds under pol. A disabled policy
// returns a nil board; every method of a nil *Board is a safe no-op that
// reports all clouds healthy.
func NewBoard(n int, pol BreakerPolicy) *Board {
	if pol.Disable {
		return nil
	}
	b := &Board{pol: pol, now: time.Now, breakers: make([][]breaker, n)}
	for i := range b.breakers {
		b.breakers[i] = make([]breaker, classCount)
	}
	return b
}

// SetNow replaces the board's clock (tests).
func (b *Board) SetNow(now func() time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.now = now
	b.mu.Unlock()
}

// SetObserver installs a callback invoked on every breaker state
// transition (telemetry). The observer runs with the board's lock held —
// it must be cheap and must not call back into the Board. nil disables it.
func (b *Board) SetObserver(fn func(cloud, class int, from, to BreakerState)) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.obs = fn
	b.mu.Unlock()
}

// transitionLocked applies a state change and notifies the observer when
// the state actually changed.
func (b *Board) transitionLocked(i, class int, br *breaker, to BreakerState) {
	from := br.state
	br.state = to
	if from != to && b.obs != nil {
		b.obs(i, class, from, to)
	}
}

func clampClass(class int) int {
	if class < 0 || class >= classCount {
		return 0
	}
	return class
}

// Suspected reports whether cloud i is currently suspected for the class:
// its breaker is open and the cooldown has not yet elapsed. A half-open
// breaker (cooldown elapsed) is not suspected — the cloud is due a probe.
func (b *Board) Suspected(i int, class int) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < 0 || i >= len(b.breakers) {
		return false
	}
	class = clampClass(class)
	br := &b.breakers[i][class]
	b.advanceLocked(i, class, br)
	return br.state == BreakerOpen
}

// Admit reports whether cloud i should be issued a request of the class
// right now. Closed breakers admit everything; an open breaker admits
// nothing until its cooldown elapses, then admits exactly one probe at a
// time (half-open). Callers that cannot afford to skip a cloud — a quorum
// that needs it — are free to ignore a false answer; Record keeps the
// state honest either way.
func (b *Board) Admit(i int, class int) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < 0 || i >= len(b.breakers) {
		return true
	}
	class = clampClass(class)
	br := &b.breakers[i][class]
	b.advanceLocked(i, class, br)
	switch br.state {
	case BreakerOpen:
		return false
	case BreakerHalfOpen:
		if br.probing {
			return false
		}
		br.probing = true
		return true
	default:
		return true
	}
}

// advanceLocked moves an open breaker to half-open once its cooldown has
// elapsed.
func (b *Board) advanceLocked(i, class int, br *breaker) {
	if br.state == BreakerOpen && b.now().Sub(br.openedAt) >= b.pol.cooldown() {
		b.transitionLocked(i, class, br, BreakerHalfOpen)
		br.probing = false
	}
}

// Record feeds the outcome of one RPC attempt against cloud i into its
// breaker. Successes and permanent application errors (not-found, access
// denied — the provider answered, it is healthy) close the breaker and
// reset the failure count; transient failures count toward the threshold
// (and reopen a half-open breaker immediately). Context errors are ignored:
// they describe the caller, not the cloud.
func (b *Board) Record(i int, class int, err error) {
	if b == nil {
		return
	}
	if err != nil && Ignorable(err) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < 0 || i >= len(b.breakers) {
		return
	}
	class = clampClass(class)
	br := &b.breakers[i][class]
	b.advanceLocked(i, class, br)
	if err == nil || !Retryable(err) {
		b.transitionLocked(i, class, br, BreakerClosed)
		br.failures = 0
		br.probing = false
		return
	}
	switch br.state {
	case BreakerHalfOpen:
		// The probe failed: back to open, restart the cooldown.
		b.transitionLocked(i, class, br, BreakerOpen)
		br.openedAt = b.now()
		br.probing = false
	case BreakerClosed:
		br.failures++
		if br.failures >= b.pol.threshold() {
			b.transitionLocked(i, class, br, BreakerOpen)
			br.openedAt = b.now()
			br.failures = 0
		}
	}
}

// State returns the current state of cloud i's breaker for the class
// (diagnostics, tests).
func (b *Board) State(i int, class int) BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if i < 0 || i >= len(b.breakers) {
		return BreakerClosed
	}
	class = clampClass(class)
	br := &b.breakers[i][class]
	b.advanceLocked(i, class, br)
	return br.state
}

// Demote stably reorders a dispatch ranking so suspected clouds come last:
// the healthy prefix keeps its relative order (whatever objective ranked
// it — latency, dollars, an explicit pin), and the suspected suffix keeps
// its relative order too, so when a fan-out is forced to dig into the
// suspected clouds it still digs in the objective's order. The slice is
// reordered in place and returned.
func (b *Board) Demote(order []int, class int) []int {
	if b == nil {
		return order
	}
	healthy := order[:0:len(order)]
	var suspected []int
	for _, i := range order {
		if b.Suspected(i, class) {
			suspected = append(suspected, i)
		} else {
			healthy = append(healthy, i)
		}
	}
	return append(healthy, suspected...)
}
