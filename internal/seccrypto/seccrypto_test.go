package seccrypto

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewKeyLengthAndUniqueness(t *testing.T) {
	k1, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	k2, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	if len(k1) != KeySize || len(k2) != KeySize {
		t.Fatalf("key sizes = %d, %d; want %d", len(k1), len(k2), KeySize)
	}
	if bytes.Equal(k1, k2) {
		t.Fatal("two generated keys are identical")
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	key, _ := NewKey()
	for _, size := range []int{0, 1, 15, 16, 17, 1000, 1 << 16} {
		plaintext := bytes.Repeat([]byte{0xAB}, size)
		ct, err := Encrypt(key, plaintext)
		if err != nil {
			t.Fatalf("Encrypt(%d bytes): %v", size, err)
		}
		// Only meaningful for plaintexts long enough that a chance match
		// against the random IV/keystream is negligible (a 1-byte pattern
		// appears in a random 17-byte ciphertext with probability ~6%).
		if size >= 16 && bytes.Contains(ct, plaintext) {
			t.Fatalf("ciphertext contains plaintext for size %d", size)
		}
		pt, err := Decrypt(key, ct)
		if err != nil {
			t.Fatalf("Decrypt: %v", err)
		}
		if !bytes.Equal(pt, plaintext) {
			t.Fatalf("round trip mismatch for size %d", size)
		}
	}
}

func TestEncryptProducesDistinctCiphertexts(t *testing.T) {
	key, _ := NewKey()
	msg := []byte("same message encrypted twice")
	c1, _ := Encrypt(key, msg)
	c2, _ := Encrypt(key, msg)
	if bytes.Equal(c1, c2) {
		t.Fatal("two encryptions of the same message are identical (IV reuse?)")
	}
}

func TestDecryptWithWrongKeyGivesGarbage(t *testing.T) {
	k1, _ := NewKey()
	k2, _ := NewKey()
	msg := []byte("confidential file contents")
	ct, _ := Encrypt(k1, msg)
	pt, err := Decrypt(k2, ct)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(pt, msg) {
		t.Fatal("decryption with the wrong key returned the plaintext")
	}
}

func TestKeySizeValidation(t *testing.T) {
	if _, err := Encrypt([]byte("short"), []byte("x")); err != ErrBadKeySize {
		t.Fatalf("Encrypt short key err = %v, want ErrBadKeySize", err)
	}
	if _, err := Decrypt([]byte("short"), make([]byte, 32)); err != ErrBadKeySize {
		t.Fatalf("Decrypt short key err = %v, want ErrBadKeySize", err)
	}
	key, _ := NewKey()
	if _, err := Decrypt(key, []byte("tiny")); err != ErrCiphertextLen {
		t.Fatalf("Decrypt short ciphertext err = %v, want ErrCiphertextLen", err)
	}
}

func TestHashDeterministicAndDistinct(t *testing.T) {
	a := Hash([]byte("file version 1"))
	b := Hash([]byte("file version 1"))
	c := Hash([]byte("file version 2"))
	if a != b {
		t.Fatal("Hash is not deterministic")
	}
	if a == c {
		t.Fatal("different inputs hashed to the same value")
	}
	if len(a) != 64 {
		t.Fatalf("SHA-256 hex length = %d, want 64", len(a))
	}
	if strings.ToLower(a) != a {
		t.Fatal("hash must be lowercase hex")
	}
}

func TestHashSHA1Length(t *testing.T) {
	h := HashSHA1([]byte("metadata tuple"))
	if len(h) != 40 {
		t.Fatalf("SHA-1 hex length = %d, want 40", len(h))
	}
}

func TestVerifyHash(t *testing.T) {
	data := []byte("object contents")
	h := Hash(data)
	if !VerifyHash(data, h) {
		t.Fatal("VerifyHash rejected a correct hash")
	}
	if VerifyHash([]byte("tampered"), h) {
		t.Fatal("VerifyHash accepted tampered data")
	}
	if VerifyHash(data, "not-hex") {
		t.Fatal("VerifyHash accepted malformed hash")
	}
	if VerifyHash(data, "abcd") {
		t.Fatal("VerifyHash accepted a truncated hash")
	}
}

func TestPropertyEncryptDecryptIdentity(t *testing.T) {
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		ct, err := Encrypt(key, msg)
		if err != nil {
			return false
		}
		pt, err := Decrypt(key, ct)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncrypt1MB(b *testing.B) {
	key, _ := NewKey()
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(key, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHash1MB(b *testing.B) {
	data := make([]byte, 1<<20)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hash(data)
	}
}

func TestEncryptIntoDecryptIntoRoundTrip(t *testing.T) {
	key, err := NewKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("streamed chunk payload")
	ct := make([]byte, len(msg)+CiphertextOverhead)
	if _, err := EncryptInto(ct, key, msg); err != nil {
		t.Fatal(err)
	}
	pt := make([]byte, len(msg))
	if _, err := DecryptInto(pt, key, ct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, msg) {
		t.Fatal("round trip mismatch")
	}
	// Sized-buffer contracts.
	if _, err := EncryptInto(make([]byte, len(msg)), key, msg); err == nil {
		t.Fatal("EncryptInto accepted an undersized buffer")
	}
	if _, err := DecryptInto(make([]byte, len(msg)+1), key, ct); err == nil {
		t.Fatal("DecryptInto accepted a missized buffer")
	}
	if _, err := DecryptInto(pt, key, ct[:CiphertextOverhead-1]); err == nil {
		t.Fatal("DecryptInto accepted a short ciphertext")
	}
}
