// Package seccrypto bundles the symmetric cryptography used by SCFS and
// DepSky: random key generation, AES-CTR encryption of file contents, and the
// collision-resistant hashes used both by the consistency-anchor algorithm
// (SHA-1 in the paper's metadata tuples, SHA-256 available as well) and by
// DepSky's integrity verification.
package seccrypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha1"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
)

// KeySize is the symmetric key size in bytes (AES-256).
const KeySize = 32

// Errors returned by this package.
var (
	ErrBadKeySize    = errors.New("seccrypto: key must be 32 bytes")
	ErrCiphertextLen = errors.New("seccrypto: ciphertext too short")
)

// NewKey generates a fresh random AES-256 key.
func NewKey() ([]byte, error) {
	key := make([]byte, KeySize)
	if _, err := io.ReadFull(rand.Reader, key); err != nil {
		return nil, fmt.Errorf("seccrypto: generating key: %w", err)
	}
	return key, nil
}

// CiphertextOverhead is the size difference between a ciphertext and its
// plaintext: the prepended IV.
const CiphertextOverhead = aes.BlockSize

// Encrypt encrypts plaintext with AES-256-CTR using a random IV. The IV is
// prepended to the returned ciphertext. CTR mode matches the paper's usage:
// confidentiality of the payload; integrity is provided separately by the
// hash stored in the consistency anchor / DepSky metadata.
func Encrypt(key, plaintext []byte) ([]byte, error) {
	return EncryptInto(make([]byte, aes.BlockSize+len(plaintext)), key, plaintext)
}

// EncryptInto is Encrypt writing into dst, which must hold exactly
// len(plaintext)+CiphertextOverhead bytes (the streaming data plane draws it
// from a buffer pool). The returned slice is dst.
func EncryptInto(dst, key, plaintext []byte) ([]byte, error) {
	if len(key) != KeySize {
		return nil, ErrBadKeySize
	}
	if len(dst) != aes.BlockSize+len(plaintext) {
		return nil, fmt.Errorf("seccrypto: ciphertext buffer is %d bytes, need %d", len(dst), aes.BlockSize+len(plaintext))
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: %w", err)
	}
	iv := dst[:aes.BlockSize]
	if _, err := io.ReadFull(rand.Reader, iv); err != nil {
		return nil, fmt.Errorf("seccrypto: generating IV: %w", err)
	}
	stream := cipher.NewCTR(block, iv)
	stream.XORKeyStream(dst[aes.BlockSize:], plaintext)
	return dst, nil
}

// Decrypt reverses Encrypt.
func Decrypt(key, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < aes.BlockSize {
		return nil, ErrCiphertextLen
	}
	return DecryptInto(make([]byte, len(ciphertext)-aes.BlockSize), key, ciphertext)
}

// DecryptInto is Decrypt writing into dst, which must hold exactly
// len(ciphertext)-CiphertextOverhead bytes. The returned slice is dst.
func DecryptInto(dst, key, ciphertext []byte) ([]byte, error) {
	if len(key) != KeySize {
		return nil, ErrBadKeySize
	}
	if len(ciphertext) < aes.BlockSize {
		return nil, ErrCiphertextLen
	}
	if len(dst) != len(ciphertext)-aes.BlockSize {
		return nil, fmt.Errorf("seccrypto: plaintext buffer is %d bytes, need %d", len(dst), len(ciphertext)-aes.BlockSize)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("seccrypto: %w", err)
	}
	iv := ciphertext[:aes.BlockSize]
	stream := cipher.NewCTR(block, iv)
	stream.XORKeyStream(dst, ciphertext[aes.BlockSize:])
	return dst, nil
}

// Hash returns the hex-encoded SHA-256 digest of data. This is the
// collision-resistant hash carried by metadata tuples and DepSky metadata.
func Hash(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// HashSHA1 returns the hex-encoded SHA-1 digest of data. The SCFS paper
// stores SHA-1 hashes in its metadata tuples; it is provided for fidelity and
// for sizing experiments, while integrity-critical paths use Hash (SHA-256).
func HashSHA1(data []byte) string {
	sum := sha1.Sum(data)
	return hex.EncodeToString(sum[:])
}

// VerifyHash reports whether data matches the given hex-encoded SHA-256 hash
// in constant time with respect to the hash comparison.
func VerifyHash(data []byte, hexHash string) bool {
	sum := sha256.Sum256(data)
	want, err := hex.DecodeString(hexHash)
	if err != nil || len(want) != sha256.Size {
		return false
	}
	return hmac.Equal(sum[:], want)
}
