// Package clock provides an abstraction over wall-clock time so that the
// SCFS simulators and the SCFS agent itself can run either against real time
// (production, benchmarks) or against a manually advanced simulated clock
// (deterministic tests).
package clock

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Clock is the minimal time source used throughout the repository.
type Clock interface {
	// Now returns the current time according to this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for at least d.
	Sleep(d time.Duration)
	// After returns a channel that receives the time after duration d.
	After(d time.Duration) <-chan time.Time
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
}

// SleepCtx blocks for at least d of c's time, or until ctx is done,
// whichever comes first. It returns ctx.Err() when the wait was interrupted
// and nil when the full duration elapsed. This is the primitive that makes
// every simulated latency in the repository cancellable: a per-cloud RPC
// whose caller already has its quorum selects on ctx.Done instead of
// sleeping its full round trip.
func SleepCtx(ctx context.Context, c Clock, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	select {
	case <-c.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Real returns a Clock backed by the system clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }
func (realClock) Since(t time.Time) time.Duration        { return time.Since(t) }

// Sim is a simulated clock whose time only moves when Advance is called.
// Goroutines blocked in Sleep or waiting on After are released when the
// simulated time passes their deadline. The zero value is not usable; use
// NewSim.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*simWaiter
}

type simWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewSim returns a simulated clock starting at the given time.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now returns the current simulated time.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since returns the simulated time elapsed since t.
func (s *Sim) Since(t time.Time) time.Duration {
	return s.Now().Sub(t)
}

// Sleep blocks until the simulated clock has advanced by at least d.
func (s *Sim) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-s.After(d)
}

// After returns a channel that fires once the simulated clock reaches now+d.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := make(chan time.Time, 1)
	deadline := s.now.Add(d)
	if d <= 0 {
		ch <- s.now
		return ch
	}
	s.waiters = append(s.waiters, &simWaiter{deadline: deadline, ch: ch})
	return ch
}

// Advance moves the simulated clock forward by d, waking any waiters whose
// deadlines have passed (in deadline order).
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	s.now = s.now.Add(d)
	now := s.now
	sort.Slice(s.waiters, func(i, j int) bool {
		return s.waiters[i].deadline.Before(s.waiters[j].deadline)
	})
	var remaining []*simWaiter
	var fired []*simWaiter
	for _, w := range s.waiters {
		if !w.deadline.After(now) {
			fired = append(fired, w)
		} else {
			remaining = append(remaining, w)
		}
	}
	s.waiters = remaining
	s.mu.Unlock()
	for _, w := range fired {
		w.ch <- now
	}
}

// Pending reports how many goroutines are waiting on this clock. It is
// useful for tests that need to know when everyone has parked before
// advancing time.
func (s *Sim) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.waiters)
}
