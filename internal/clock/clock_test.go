package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealClockNow(t *testing.T) {
	c := Real()
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real().Now() = %v, want between %v and %v", got, before, after)
	}
}

func TestRealClockSince(t *testing.T) {
	c := Real()
	start := c.Now()
	if d := c.Since(start); d < 0 {
		t.Fatalf("Since returned negative duration %v", d)
	}
}

func TestRealClockAfter(t *testing.T) {
	c := Real()
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(5 * time.Second):
		t.Fatal("After(1ms) did not fire within 5s")
	}
}

func TestSimNowStartsAtGivenTime(t *testing.T) {
	start := time.Date(2014, 6, 19, 0, 0, 0, 0, time.UTC)
	s := NewSim(start)
	if !s.Now().Equal(start) {
		t.Fatalf("Now() = %v, want %v", s.Now(), start)
	}
}

func TestSimAdvanceMovesTime(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewSim(start)
	s.Advance(90 * time.Second)
	want := start.Add(90 * time.Second)
	if !s.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", s.Now(), want)
	}
}

func TestSimAfterFiresOnAdvance(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	ch := s.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before time advanced")
	default:
	}
	s.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired too early")
	default:
	}
	s.Advance(2 * time.Second)
	select {
	case tm := <-ch:
		if tm.Before(time.Unix(0, 0).Add(10 * time.Second)) {
			t.Fatalf("fired with time %v before deadline", tm)
		}
	case <-time.After(time.Second):
		t.Fatal("After never fired after advancing past the deadline")
	}
}

func TestSimAfterZeroOrNegativeFiresImmediately(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	select {
	case <-s.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-s.After(-time.Second):
	default:
		t.Fatal("After(-1s) did not fire immediately")
	}
}

func TestSimSleepWakesSleepers(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var wg sync.WaitGroup
	const sleepers = 8
	wg.Add(sleepers)
	for i := 0; i < sleepers; i++ {
		go func(i int) {
			defer wg.Done()
			s.Sleep(time.Duration(i+1) * time.Second)
		}(i)
	}
	// Wait until all sleepers are parked.
	deadline := time.Now().Add(5 * time.Second)
	for s.Pending() < sleepers {
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d sleepers parked", s.Pending(), sleepers)
		}
		time.Sleep(time.Millisecond)
	}
	s.Advance(time.Duration(sleepers+1) * time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("sleepers did not wake after Advance")
	}
}

func TestSimSleepZeroReturnsImmediately(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		s.Sleep(0)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep(0) blocked")
	}
}

func TestSimPartialAdvanceWakesOnlyDue(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	early := s.After(1 * time.Second)
	late := s.After(10 * time.Second)
	s.Advance(5 * time.Second)
	select {
	case <-early:
	case <-time.After(time.Second):
		t.Fatal("early waiter not woken")
	}
	select {
	case <-late:
		t.Fatal("late waiter woken too early")
	default:
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", s.Pending())
	}
}
