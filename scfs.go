// Package scfs is the public facade of the SCFS shared cloud-backed file
// system (Bessani et al., USENIX ATC'14): a POSIX-like file system whose
// data lives in a cloud-of-clouds, surviving f arbitrarily faulty providers,
// with strong consistency anchored in a fault-tolerant coordination service.
//
// It is the only package a user needs to import. A mount is created with
// functional options and used with context-first operations:
//
//	mount, err := scfs.New(ctx, scfs.WithMode(scfs.Blocking))
//	if err != nil { ... }
//	defer mount.Close(context.Background())
//
//	if err := scfs.WriteFile(ctx, mount, "/docs/report.txt", data); err != nil { ... }
//	data, err := scfs.ReadFile(ctx, mount, "/docs/report.txt")
//
// Every operation takes a context.Context that bounds that call: cancelling
// it aborts the quorum fan-out down to the individual per-cloud RPCs and
// returns ctx.Err() promptly, even when one cloud is a multi-second
// straggler. The losers of a quorum race are cancelled the moment the quorum
// verdict is known, so a cancelled (or simply completed) operation leaves no
// redundant RPCs running.
//
// Beyond cancellation, each call can carry its own I/O policy: variadic
// CallOptions (or a WithPolicy context) tune how that one operation spends
// the cloud-of-clouds' redundancy. WithHedge(p) turns its quorum reads into
// hedged reads — only the fastest quorum is contacted up front, stragglers
// only after the tracked p-th latency percentile elapses — and
// WithReadahead(n) gives its sequential scans an n-chunk prefetch pipeline:
//
//	data, err := scfs.ReadFile(ctx, mount, "/idx/key", scfs.WithHedge(0.95))
//	n, err := scfs.ReadFileTo(ctx, mount, "/logs/big.bin", w, scfs.WithReadahead(4))
//
// For interoperability with the standard library, IOFS adapts a mount to
// io/fs: fs.WalkDir, testing/fstest.TestFS and http.FileServer (via http.FS)
// all work against it; pass a WithPolicy context to IOFS to tune the
// adapter's reads.
package scfs

import (
	"context"
	"io"

	"scfs/internal/cloud"
	"scfs/internal/core"
	"scfs/internal/fsapi"
	"scfs/internal/telemetry"
)

// Re-exported types: the facade is intentionally a thin skin over the
// internal layers, so the types flowing through it are aliases, not copies.
type (
	// FileInfo describes a namespace entry.
	FileInfo = fsapi.FileInfo
	// FileType distinguishes files, directories and symlinks.
	FileType = fsapi.FileType
	// OpenFlag mirrors the subset of POSIX open(2) flags SCFS supports.
	OpenFlag = fsapi.OpenFlag
	// Permission is what an ACL entry grants.
	Permission = fsapi.Permission
	// ACLEntry grants a permission to a user.
	ACLEntry = fsapi.ACLEntry
	// Handle is an open file.
	Handle = fsapi.Handle
	// Mode selects the consistency/durability tradeoff of the mount.
	Mode = core.Mode
	// GCPolicy configures the multi-version garbage collector.
	GCPolicy = core.GCPolicy
	// Stats aggregates the mount's activity counters.
	Stats = core.Stats
	// CostReport is the mount's cloud-spend snapshot (see FS.CostReport).
	CostReport = core.CostReport
	// GCReport summarizes one garbage-collection run, including the
	// $/month of storage spend it reclaimed.
	GCReport = core.GCReport
	// ObjectStore is the per-account client view of one cloud provider;
	// custom backends implement it and are mounted with WithClouds.
	ObjectStore = cloud.ObjectStore
	// MetricsSnapshot is a point-in-time copy of the mount's metrics
	// registry, carried by Stats().Telemetry on mounts built WithMetrics.
	MetricsSnapshot = telemetry.Snapshot
	// HistogramSnapshot is one latency histogram inside a MetricsSnapshot.
	HistogramSnapshot = telemetry.HistogramSnapshot
	// ProviderSpend is one provider's metered usage priced in dollars,
	// carried by Stats().Spend.
	ProviderSpend = core.ProviderSpend
	// Trace is one client operation's recorded quorum fan-out (see
	// WithTracing and FS.Traces).
	Trace = telemetry.Trace
	// Span is one per-cloud RPC attempt inside a Trace.
	Span = telemetry.Span
	// TraceID is a trace's wire identity (W3C trace-id shaped); the
	// gateway propagates it via traceparent/X-SCFS-Trace headers.
	TraceID = telemetry.TraceID
	// Tracer is the mount's request tracer (see WithTracing and
	// FS.Tracer); the gateway package accepts one via gateway.WithTracer.
	Tracer = telemetry.Tracer
	// FlightRecorder retains exemplar traces — the slow tail and every
	// faulted operation (see WithFlightRecorder and FS.FlightRecorder).
	FlightRecorder = telemetry.FlightRecorder
	// FlightStats summarizes a FlightRecorder's retention activity.
	FlightStats = telemetry.FlightStats
)

// Open flags.
const (
	ReadOnly  = fsapi.ReadOnly
	WriteOnly = fsapi.WriteOnly
	ReadWrite = fsapi.ReadWrite
	Create    = fsapi.Create
	Truncate  = fsapi.Truncate
	Exclusive = fsapi.Exclusive
)

// Modes of operation (§3.1 of the paper).
const (
	// Blocking waits for data and metadata to be safely in the cloud(s)
	// before Close returns.
	Blocking = core.Blocking
	// NonBlocking returns from Close once the data is locally durable and
	// queued for upload.
	NonBlocking = core.NonBlocking
	// NonSharing dispenses with the coordination service entirely.
	NonSharing = core.NonSharing
)

// ACL permissions.
const (
	PermNone      = fsapi.PermNone
	PermRead      = fsapi.PermRead
	PermReadWrite = fsapi.PermReadWrite
)

// File types.
const (
	TypeFile    = fsapi.TypeFile
	TypeDir     = fsapi.TypeDir
	TypeSymlink = fsapi.TypeSymlink
)

// Sentinel errors. They wrap their io/fs counterparts, so
// errors.Is(err, fs.ErrNotExist) and friends work too.
var (
	ErrNotExist   = fsapi.ErrNotExist
	ErrExist      = fsapi.ErrExist
	ErrIsDir      = fsapi.ErrIsDir
	ErrNotDir     = fsapi.ErrNotDir
	ErrNotEmpty   = fsapi.ErrNotEmpty
	ErrPermission = fsapi.ErrPermission
	ErrLocked     = fsapi.ErrLocked
	ErrReadOnly   = fsapi.ErrReadOnly
	ErrClosed     = fsapi.ErrClosed
	ErrInvalid    = fsapi.ErrInvalid
)

// FS is a mounted SCFS file system. It wraps the SCFS agent (the client-side
// component the paper runs under FUSE) together with the backend stack the
// options assembled: simulated or caller-provided clouds, a coordination
// service, and the DepSky cloud-of-clouds dispersal. All methods are safe
// for concurrent use.
type FS struct {
	agent   *core.Agent
	metrics *telemetry.Registry
	tracer  *telemetry.Tracer
	flight  *telemetry.FlightRecorder
	debug   *debugServer
	cleanup func() // stops build-owned resources (coordination replica groups)
}

// New mounts an SCFS file system. With no options it assembles a fully
// simulated deployment: four in-process cloud providers (tolerating f=1
// faulty), an in-process DepSpace coordination service, and the DepSky-CA
// dispersal protocol — useful for tests, examples and experimentation. Use
// WithClouds to mount over real (or differently simulated) providers.
//
// ctx bounds the mount itself; the mounted file system outlives it and runs
// until Close / Unmount.
func New(ctx context.Context, opts ...Option) (*FS, error) {
	cfg := defaultConfig()
	for _, opt := range opts {
		opt(&cfg)
	}
	agent, tel, cleanup, err := cfg.build(ctx)
	if err != nil {
		return nil, err
	}
	m := &FS{agent: agent, metrics: tel.metrics, tracer: tel.tracer, flight: tel.flight, cleanup: cleanup}
	if cfg.debugSet {
		dbg, err := startDebugServer(cfg.debugAddr, m)
		if err != nil {
			_ = agent.Unmount(context.Background())
			if cleanup != nil {
				cleanup()
			}
			return nil, err
		}
		m.debug = dbg
	}
	return m, nil
}

// Agent exposes the underlying SCFS agent for advanced use (stats,
// garbage-collection control, durability introspection).
func (m *FS) Agent() *core.Agent { return m.agent }

// Stats returns a snapshot of the mount's activity counters. On mounts
// built WithMetrics it includes the full telemetry snapshot (per-cloud RPC
// counters and latency histograms, hedge and breaker activity, readahead
// pipeline state, per-provider metered spend) under Stats.Telemetry and
// Stats.Spend.
func (m *FS) Stats() Stats { return m.agent.Stats() }

// Traces returns up to n recently completed operation traces, newest first
// (n <= 0 returns the whole ring). Empty unless the mount was built
// WithTracing (or WithDebugServer).
func (m *FS) Traces(n int) []*Trace { return m.tracer.Recent(n) }

// Tracer returns the mount's request tracer, or nil unless the mount was
// built WithTracing (or WithDebugServer) — hand it to gateway.WithTracer
// so HTTP requests join the mount's traces.
func (m *FS) Tracer() *Tracer { return m.tracer }

// FlightRecorder returns the mount's flight recorder, or nil unless the
// mount was built WithFlightRecorder (or WithDebugServer). Where Traces
// holds the most *recent* operations, the recorder holds the most
// *exemplary* ones: the slowest of each operation class and everything
// that erred, hit an open breaker, or crossed a view change.
func (m *FS) FlightRecorder() *FlightRecorder { return m.flight }

// traced starts a facade-level trace for one metadata operation. An
// operation arriving with a trace already on its context — a gateway
// request, an io/fs walk inside a traced read — joins it instead (tr is
// then nil and its SetError/Finish no-op), so exactly one trace covers
// each client-visible operation.
func (m *FS) traced(ctx context.Context, op, unit string) (context.Context, *telemetry.Trace) {
	return m.tracer.Start(ctx, op, unit)
}

// DebugAddr returns the listen address of the mount's debug server, or ""
// when WithDebugServer was not used. With WithDebugServer(":0") this is how
// the ephemeral port is discovered.
func (m *FS) DebugAddr() string {
	if m.debug == nil {
		return ""
	}
	return m.debug.addr
}

// Open opens (or with Create, creates) a file. CallOptions set the I/O
// policy of the open and of the returned handle's reads: WithReadahead
// configures the handle's prefetch pipeline at open time, WithHedge and
// WithReadPreference shape the open's quorum reads (pass a WithPolicy
// context to the handle's ReadAt to hedge individual reads).
func (m *FS) Open(ctx context.Context, path string, flags OpenFlag, opts ...CallOption) (Handle, error) {
	ctx, tr := m.traced(callCtx(ctx, opts), "open", path)
	h, err := m.agent.Open(ctx, path, flags)
	tr.SetError(err)
	tr.Finish()
	return h, err
}

// Mkdir creates a directory (parents must exist).
func (m *FS) Mkdir(ctx context.Context, path string) error {
	ctx, tr := m.traced(ctx, "mkdir", path)
	err := m.agent.Mkdir(ctx, path)
	tr.SetError(err)
	tr.Finish()
	return err
}

// Rmdir removes an empty directory.
func (m *FS) Rmdir(ctx context.Context, path string) error {
	ctx, tr := m.traced(ctx, "rmdir", path)
	err := m.agent.Rmdir(ctx, path)
	tr.SetError(err)
	tr.Finish()
	return err
}

// Unlink removes a file (its versions are reclaimed by the garbage
// collector).
func (m *FS) Unlink(ctx context.Context, path string) error {
	ctx, tr := m.traced(ctx, "unlink", path)
	err := m.agent.Unlink(ctx, path)
	tr.SetError(err)
	tr.Finish()
	return err
}

// Rename moves a file or directory (and its subtree).
func (m *FS) Rename(ctx context.Context, oldPath, newPath string) error {
	ctx, tr := m.traced(ctx, "rename", oldPath)
	err := m.agent.Rename(ctx, oldPath, newPath)
	tr.SetError(err)
	tr.Finish()
	return err
}

// Stat returns metadata for a path.
func (m *FS) Stat(ctx context.Context, path string) (FileInfo, error) {
	ctx, tr := m.traced(ctx, "stat", path)
	fi, err := m.agent.Stat(ctx, path)
	tr.SetError(err)
	tr.Finish()
	return fi, err
}

// ReadDir lists a directory.
func (m *FS) ReadDir(ctx context.Context, path string) ([]FileInfo, error) {
	ctx, tr := m.traced(ctx, "readdir", path)
	out, err := m.agent.ReadDir(ctx, path)
	tr.SetError(err)
	tr.Finish()
	return out, err
}

// SetFacl grants or revokes a user's permission on a path.
func (m *FS) SetFacl(ctx context.Context, path, user string, perm Permission) error {
	ctx, tr := m.traced(ctx, "setfacl", path)
	err := m.agent.SetFacl(ctx, path, user, perm)
	tr.SetError(err)
	tr.Finish()
	return err
}

// GetFacl returns the ACL entries of a path.
func (m *FS) GetFacl(ctx context.Context, path string) ([]ACLEntry, error) {
	ctx, tr := m.traced(ctx, "getfacl", path)
	out, err := m.agent.GetFacl(ctx, path)
	tr.SetError(err)
	tr.Finish()
	return out, err
}

// Unmount flushes all state and releases resources (including the debug
// server, when one was started). Cancelling ctx forces the unmount,
// aborting pending background uploads.
func (m *FS) Unmount(ctx context.Context) error {
	if m.debug != nil {
		m.debug.shutdown(ctx)
	}
	err := m.agent.Unmount(ctx)
	if m.cleanup != nil {
		// The final flush may still have needed coordination, so the replica
		// groups stop only after the agent is down. Idempotent.
		m.cleanup()
	}
	return err
}

// Close is Unmount, under the name Go readers expect on a resource.
func (m *FS) Close(ctx context.Context) error { return m.Unmount(ctx) }

// WaitForUploads blocks until the background uploads queued so far have been
// processed (non-blocking and non-sharing modes), or until ctx is done.
func (m *FS) WaitForUploads(ctx context.Context) error { return m.agent.WaitForUploads(ctx) }

// Collect runs one synchronous garbage-collection pass. The report carries
// what was reclaimed along every axis of the cloud cost model, including
// the $/month of storage spend the run stopped accruing; candidates are
// swept in descending dollars-per-byte order.
func (m *FS) Collect(ctx context.Context) (core.GCReport, error) { return m.agent.Collect(ctx) }

// CostReport prices the mount's current cloud footprint: files, versions
// and objects resident across the clouds, the recurring $/month they cost
// under the mount's price table (WithPriceTable), and what reading or
// reclaiming them would spend. It issues one batched metadata listing and
// moves no payload bytes.
func (m *FS) CostReport(ctx context.Context) (CostReport, error) { return m.agent.CostReport(ctx) }

// ReadFile opens path, reads it fully and closes it. CallOptions tune the
// read's I/O policy (hedged quorum reads, readahead for large files).
func ReadFile(ctx context.Context, m *FS, path string, opts ...CallOption) ([]byte, error) {
	return fsapi.ReadFile(callCtx(ctx, opts), m.agent, path)
}

// WriteFile creates (or truncates) path with the given contents. CallOptions
// tune the write's I/O policy.
func WriteFile(ctx context.Context, m *FS, path string, data []byte, opts ...CallOption) error {
	return fsapi.WriteFile(callCtx(ctx, opts), m.agent, path, data)
}

// WriteFileFrom streams r into path with bounded memory and returns how many
// bytes were written. CallOptions tune the write's I/O policy.
func WriteFileFrom(ctx context.Context, m *FS, path string, r io.Reader, opts ...CallOption) (int64, error) {
	return fsapi.WriteFileFrom(callCtx(ctx, opts), m.agent, path, r)
}

// ReadFileTo streams the contents of path into w and returns how many bytes
// were copied. CallOptions tune the read's I/O policy — WithReadahead turns
// a sequential copy of a cold large file into a pipelined scan that
// prefetches upcoming chunks while the current one drains into w.
func ReadFileTo(ctx context.Context, m *FS, path string, w io.Writer, opts ...CallOption) (int64, error) {
	return fsapi.ReadFileTo(callCtx(ctx, opts), m.agent, path, w)
}
