package scfs

// Call-scoped I/O policy. A mount-wide Options struct cannot say "this read
// is a latency-critical point lookup" or "this read is a bulk sequential
// scan" — the policy has to travel with the call. CallOptions compose an
// IOPolicy that is carried by the operation's context through every layer
// (facade → fs API → agent → quorum engine → per-cloud RPCs):
//
//	// Hedged point read: contact the fastest quorum only, the straggler
//	// cloud only if the 95th latency percentile elapses first.
//	data, err := scfs.ReadFile(ctx, mount, "/idx/key", scfs.WithHedge(0.95))
//
//	// Bulk scan: prefetch up to 4 chunks ahead of the consumer.
//	_, err = scfs.ReadFileTo(ctx, mount, "/logs/big.bin", w, scfs.WithReadahead(4))
//
// For APIs whose signatures cannot carry options (io/fs via IOFS, or the
// fsapi.Handle methods), WithPolicy stamps the policy directly onto a
// context.

import (
	"context"
	"time"

	"scfs/internal/iopolicy"
)

type (
	// IOPolicy is the per-operation I/O policy assembled from CallOptions.
	// Its zero value reproduces the default behaviour: immediate full
	// fan-out to every cloud, no readahead.
	IOPolicy = iopolicy.Policy
	// HedgePolicy configures hedged reads (see WithHedge) and hedged
	// writes (see WithWriteHedge).
	HedgePolicy = iopolicy.Hedge
	// ReadPreference orders the clouds a read contacts first (see
	// WithReadPreference).
	ReadPreference = iopolicy.Preference
	// IOLimits bounds the extra work a policy may spend (see WithLimits).
	IOLimits = iopolicy.Limits
	// PlacementObjective ranks the clouds an operation dispatches to by
	// cost, latency, or a weighted blend (see WithPlacement).
	PlacementObjective = iopolicy.Placement
	// RetryPolicy grants the operation's per-cloud RPCs a retry budget (see
	// WithRetry).
	RetryPolicy = iopolicy.Retry
	// BreakerMode selects how the operation treats clouds whose circuit
	// breaker is open (see WithBreaker).
	BreakerMode = iopolicy.BreakerMode
)

// Breaker modes for WithBreaker.
const (
	// BreakerDemote (the default) keeps contacting suspected clouds but
	// demotes them to the back of every dispatch ranking, where a hedged
	// fan-out usually decides the quorum before reaching them.
	BreakerDemote = iopolicy.BreakerDemote
	// BreakerBypass ignores the breaker scoreboard for this operation
	// (outcomes still feed it).
	BreakerBypass = iopolicy.BreakerBypass
	// BreakerFailFast skips suspected clouds without contacting them; the
	// skipped slot counts as that cloud's failure in the quorum math.
	BreakerFailFast = iopolicy.BreakerFailFast
)

// CallOption tunes the I/O policy of a single operation. Pass CallOptions
// to the variadic facade methods (Open, ReadFile, ...) or bind them to a
// context with WithPolicy.
type CallOption func(*IOPolicy)

// WithHedge makes the operation's quorum reads hedged: each fan-out
// contacts only the preferred quorum of clouds immediately and defers the
// redundant requests until the given percentile (0 < p <= 1, e.g. 0.95) of
// the preferred clouds' tracked latency has elapsed — or a preferred cloud
// fails, whichever comes first. In the common case the extra RPCs are never
// issued, cutting per-request fees and egress while keeping the tail-latency
// protection: a stalling cloud is hedged around after the delay.
//
// With no latency observations yet the hedge fires immediately, degrading
// gracefully to the full fan-out. Combine with WithHedgeDelayBounds to
// clamp the tracked delay.
//
// The preferred set is ranked fastest-first by default (the tracker
// ranking dispatch falls through to); WithHedge deliberately does not pin
// an explicit preference, so a mount-wide WithPlacement objective or
// WithReadPreference order still decides the ranking of a hedged call.
func WithHedge(percentile float64) CallOption {
	return func(p *IOPolicy) { p.Hedge.Percentile = percentile }
}

// WithHedgeDelayBounds clamps the tracked hedge delay of WithHedge (read
// fan-outs) to [min, max]; max of 0 leaves the delay uncapped. Use it to
// bound how long an operation may wait on a preferred set whose tracked
// percentile is stale or pathological. Write hedges keep their own bounds
// (WithWriteHedgeDelayBounds), so tightening a latency-critical read never
// loosens the mount's write-spare parking.
func WithHedgeDelayBounds(min, max time.Duration) CallOption {
	return func(p *IOPolicy) {
		p.Hedge.MinDelay = min
		p.Hedge.MaxDelay = max
	}
}

// WithWriteHedgeDelayBounds clamps the tracked spare-release delay of
// WithWriteHedge to [min, max]; max of 0 leaves it uncapped. Raise min to
// keep spare clouds parked through upload jitter (a long floor costs
// nothing while the preferred quorum is healthy — the quorum verdict, not
// the timer, completes the write).
func WithWriteHedgeDelayBounds(min, max time.Duration) CallOption {
	return func(p *IOPolicy) {
		p.WriteHedge.MinDelay = min
		p.WriteHedge.MaxDelay = max
	}
}

// WithWriteHedge makes the operation's quorum writes hedged: each upload
// fan-out ships its shards to the preferred n-f quorum immediately — ranked
// by the placement objective (WithPlacement), an explicit preference, or
// tracked upload latency — and releases the spare clouds only after the
// given percentile (0 < p <= 1) of the preferred clouds' tracked upload
// latency has elapsed, or a preferred upload fails, whichever comes first.
// On a stable deployment the spare uploads are never issued, cutting the
// write's ingress bytes and PUT fees to the n-f copies the paper's cost
// model charges for, at unchanged durability: the protocol only ever
// promises the quorum, and a version on the preferred n-f clouds survives
// f faults among them (n-2f = f+1 shards remain) and stays
// quorum-certified to readers.
//
// Raise MinDelay via WithWriteHedgeDelayBounds to keep spares parked
// through upload jitter; a cold tracker hedges almost immediately,
// degrading gracefully to the full fan-out.
func WithWriteHedge(percentile float64) CallOption {
	return func(p *IOPolicy) { p.WriteHedge.Percentile = percentile }
}

// WithPlacement ranks the clouds the operation's fan-outs dispatch to by
// the given objective: PlaceCheapest sends work to the clouds where it
// costs the fewest dollars (per the mount's price table), PlaceFastest to
// the lowest-latency ones, PlaceBalanced(w) blends the two. The ranking
// decides which clouds form the preferred quorum of hedged dispatch, so it
// takes effect on operations that hedge — WithHedge for reads,
// WithWriteHedge for writes. Without a hedge, dispatch remains the
// immediate full fan-out and every cloud is contacted regardless of rank.
func WithPlacement(obj PlacementObjective) CallOption {
	return func(p *IOPolicy) { p.Placement = obj }
}

// PlaceCheapest ranks clouds cheapest-first by the estimated dollars the
// operation costs at each (request fee + transfer, plus a month of storage
// for uploads).
func PlaceCheapest() PlacementObjective {
	return PlacementObjective{Strategy: iopolicy.PlaceCost}
}

// PlaceFastest ranks clouds by tracked latency, fastest first (the default
// ranking whenever one is needed).
func PlaceFastest() PlacementObjective {
	return PlacementObjective{Strategy: iopolicy.PlaceLatency}
}

// PlaceBalanced blends the normalized cost and latency rankings;
// costWeight in [0, 1] is the cost share (0 = pure latency, 1 = pure cost).
func PlaceBalanced(costWeight float64) PlacementObjective {
	return PlacementObjective{Strategy: iopolicy.PlaceBalanced, CostWeight: costWeight}
}

// WithReadahead gives sequential reads of the operation's files an n-chunk
// prefetch pipeline: while one chunk is being consumed, up to n upcoming
// chunks are fetched and decoded in the background, overlapping network and
// decode latency with consumption. The window ramps up only while the
// access pattern stays sequential and collapses on the first seek, so the
// option is safe to set on handles that may also read randomly. It takes
// effect at open time (Open, ReadFile, ReadFileTo, or a WithPolicy context
// passed to IOFS).
func WithReadahead(chunks int) CallOption {
	return func(p *IOPolicy) { p.Readahead = chunks }
}

// WithReadPreference orders the clouds the operation's fan-outs contact
// first. PreferFastest ranks them by tracked latency; PreferClouds pins an
// explicit order (e.g. to keep egress at a contractual provider). Despite
// the historical name, the preference applies to every fan-out of the
// operation: quorum reads always, and — when WithWriteHedge is in effect —
// the preferred write quorum too, where an explicit PreferClouds order
// takes precedence over the WithPlacement objective (pinning an operation
// to clouds pins where its data lands).
func WithReadPreference(pref ReadPreference) CallOption {
	return func(p *IOPolicy) { p.Preference = pref }
}

// PreferFastest ranks clouds by their tracked latency, fastest first.
func PreferFastest() ReadPreference { return ReadPreference{Fastest: true} }

// PreferClouds pins an explicit cloud order by index (the order the stores
// were passed to WithClouds); unlisted clouds rank after the listed ones.
func PreferClouds(order ...int) ReadPreference { return ReadPreference{Order: order} }

// WithLimits bounds the extra work the operation's policy may spend: the
// number of concurrently in-flight prefetch chunks, and how many extra
// clouds a hedge firing may contact at once.
func WithLimits(limits IOLimits) CallOption {
	return func(p *IOPolicy) { p.Limits = limits }
}

// WithRetry grants every per-cloud RPC of the operation a retry budget of
// maxAttempts total attempts (first try included): transient provider
// failures — outages, throttling — are retried with full-jitter exponential
// backoff inside the budget, while permanent answers (not-found, access
// denied) and context cancellations return immediately. Clouds whose
// circuit breaker is open get no budget (one probe-like attempt only), so
// retries are spent where they can help. maxAttempts <= 1 disables retries,
// the default.
//
// The backoff starts at 50ms and grows exponentially (capped at 16x);
// use WithRetryBackoff to tune it.
func WithRetry(maxAttempts int) CallOption {
	return func(p *IOPolicy) {
		p.Retry.MaxAttempts = maxAttempts
		if p.Retry.BackoffBase == 0 {
			p.Retry.BackoffBase = 50 * time.Millisecond
		}
	}
}

// WithRetryBackoff shapes the delays between WithRetry attempts: base caps
// the first (jittered) delay and max caps the exponential growth (0 = 16x
// base).
func WithRetryBackoff(base, max time.Duration) CallOption {
	return func(p *IOPolicy) {
		p.Retry.BackoffBase = base
		p.Retry.BackoffMax = max
	}
}

// WithBreaker selects how the operation treats clouds whose circuit breaker
// is currently open (suspected of misbehaving): BreakerDemote (default)
// still contacts them but last, BreakerFailFast refuses to contact them at
// all (cheapest, but their quorum slot is forfeit), BreakerBypass pretends
// the scoreboard is clean (e.g. for a health-probing read).
func WithBreaker(mode BreakerMode) CallOption {
	return func(p *IOPolicy) { p.Breaker = mode }
}

// WithPolicy returns a context carrying the I/O policy assembled from the
// options. Every SCFS operation run under the returned context — including
// reads through the io/fs adapter (IOFS) and through already-open handles —
// applies the policy; per-operation options passed to variadic facade
// methods are overlaid on top of it.
func WithPolicy(ctx context.Context, opts ...CallOption) context.Context {
	base, _ := iopolicy.FromContext(ctx)
	return iopolicy.With(ctx, applyCallOptions(base, opts))
}

// applyCallOptions folds opts over base.
func applyCallOptions(base IOPolicy, opts []CallOption) IOPolicy {
	for _, opt := range opts {
		opt(&base)
	}
	return base
}

// callCtx stamps the per-call options (overlaid on any policy ctx already
// carries) onto the context handed to the layers below. With no options the
// context is returned unchanged.
func callCtx(ctx context.Context, opts []CallOption) context.Context {
	if len(opts) == 0 {
		return ctx
	}
	return WithPolicy(ctx, opts...)
}
