package scfs

// Call-scoped I/O policy. A mount-wide Options struct cannot say "this read
// is a latency-critical point lookup" or "this read is a bulk sequential
// scan" — the policy has to travel with the call. CallOptions compose an
// IOPolicy that is carried by the operation's context through every layer
// (facade → fs API → agent → quorum engine → per-cloud RPCs):
//
//	// Hedged point read: contact the fastest quorum only, the straggler
//	// cloud only if the 95th latency percentile elapses first.
//	data, err := scfs.ReadFile(ctx, mount, "/idx/key", scfs.WithHedge(0.95))
//
//	// Bulk scan: prefetch up to 4 chunks ahead of the consumer.
//	_, err = scfs.ReadFileTo(ctx, mount, "/logs/big.bin", w, scfs.WithReadahead(4))
//
// For APIs whose signatures cannot carry options (io/fs via IOFS, or the
// fsapi.Handle methods), WithPolicy stamps the policy directly onto a
// context.

import (
	"context"
	"time"

	"scfs/internal/iopolicy"
)

type (
	// IOPolicy is the per-operation I/O policy assembled from CallOptions.
	// Its zero value reproduces the default behaviour: immediate full
	// fan-out to every cloud, no readahead.
	IOPolicy = iopolicy.Policy
	// HedgePolicy configures hedged reads (see WithHedge).
	HedgePolicy = iopolicy.Hedge
	// ReadPreference orders the clouds a read contacts first (see
	// WithReadPreference).
	ReadPreference = iopolicy.Preference
	// IOLimits bounds the extra work a policy may spend (see WithLimits).
	IOLimits = iopolicy.Limits
)

// CallOption tunes the I/O policy of a single operation. Pass CallOptions
// to the variadic facade methods (Open, ReadFile, ...) or bind them to a
// context with WithPolicy.
type CallOption func(*IOPolicy)

// WithHedge makes the operation's quorum reads hedged: each fan-out
// contacts only the preferred quorum of clouds immediately and defers the
// redundant requests until the given percentile (0 < p <= 1, e.g. 0.95) of
// the preferred clouds' tracked latency has elapsed — or a preferred cloud
// fails, whichever comes first. In the common case the extra RPCs are never
// issued, cutting per-request fees and egress while keeping the tail-latency
// protection: a stalling cloud is hedged around after the delay.
//
// With no latency observations yet the hedge fires immediately, degrading
// gracefully to the full fan-out. Combine with WithHedgeDelayBounds to
// clamp the tracked delay.
func WithHedge(percentile float64) CallOption {
	return func(p *IOPolicy) {
		p.Hedge.Percentile = percentile
		if p.Preference.IsZero() {
			p.Preference = ReadPreference{Fastest: true}
		}
	}
}

// WithHedgeDelayBounds clamps the tracked hedge delay of WithHedge to
// [min, max]; max of 0 leaves the delay uncapped. Use it to bound how long
// an operation may wait on a preferred set whose tracked percentile is
// stale or pathological.
func WithHedgeDelayBounds(min, max time.Duration) CallOption {
	return func(p *IOPolicy) {
		p.Hedge.MinDelay = min
		p.Hedge.MaxDelay = max
	}
}

// WithReadahead gives sequential reads of the operation's files an n-chunk
// prefetch pipeline: while one chunk is being consumed, up to n upcoming
// chunks are fetched and decoded in the background, overlapping network and
// decode latency with consumption. The window ramps up only while the
// access pattern stays sequential and collapses on the first seek, so the
// option is safe to set on handles that may also read randomly. It takes
// effect at open time (Open, ReadFile, ReadFileTo, or a WithPolicy context
// passed to IOFS).
func WithReadahead(chunks int) CallOption {
	return func(p *IOPolicy) { p.Readahead = chunks }
}

// WithReadPreference orders the clouds the operation's reads contact first.
// PreferFastest ranks them by tracked latency; PreferClouds pins an
// explicit order (e.g. to keep egress at a contractual provider).
func WithReadPreference(pref ReadPreference) CallOption {
	return func(p *IOPolicy) { p.Preference = pref }
}

// PreferFastest ranks clouds by their tracked latency, fastest first.
func PreferFastest() ReadPreference { return ReadPreference{Fastest: true} }

// PreferClouds pins an explicit cloud order by index (the order the stores
// were passed to WithClouds); unlisted clouds rank after the listed ones.
func PreferClouds(order ...int) ReadPreference { return ReadPreference{Order: order} }

// WithLimits bounds the extra work the operation's policy may spend: the
// number of concurrently in-flight prefetch chunks, and how many extra
// clouds a hedge firing may contact at once.
func WithLimits(limits IOLimits) CallOption {
	return func(p *IOPolicy) { p.Limits = limits }
}

// WithPolicy returns a context carrying the I/O policy assembled from the
// options. Every SCFS operation run under the returned context — including
// reads through the io/fs adapter (IOFS) and through already-open handles —
// applies the policy; per-operation options passed to variadic facade
// methods are overlaid on top of it.
func WithPolicy(ctx context.Context, opts ...CallOption) context.Context {
	base, _ := iopolicy.FromContext(ctx)
	return iopolicy.With(ctx, applyCallOptions(base, opts))
}

// applyCallOptions folds opts over base.
func applyCallOptions(base IOPolicy, opts []CallOption) IOPolicy {
	for _, opt := range opts {
		opt(&base)
	}
	return base
}

// callCtx stamps the per-call options (overlaid on any policy ctx already
// carries) onto the context handed to the layers below. With no options the
// context is returned unchanged.
func callCtx(ctx context.Context, opts []CallOption) context.Context {
	if len(opts) == 0 {
		return ctx
	}
	return WithPolicy(ctx, opts...)
}
